"""The recording implementation of the instrumentation hooks.

Maps every hook onto registry instruments (see the catalogue in
``docs/OBSERVABILITY.md``) and, for run-level activity, onto trace
records.  One instance is shared by all parties of a community, so the
registry aggregates across the whole deployment; per-party attribution
lives in the trace records.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.hooks import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InMemoryCollector, Tracer


class RecordingInstrumentation(Instrumentation):
    """Hook implementation recording into a registry and a tracer."""

    enabled = True

    def __init__(self, registry: "MetricsRegistry | None" = None,
                 tracer: "Tracer | None" = None,
                 collect: bool = False) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.collector: "Optional[InMemoryCollector]" = None
        if collect:
            self.collector = InMemoryCollector()
            self.tracer.add_exporter(self.collector)

    # -- protocol ----------------------------------------------------------

    def run_started(self, party, object_name, run_id, role, mode):
        self.registry.counter("protocol.runs.started").inc()
        self.registry.counter(f"protocol.runs.started.{role}").inc()
        self.tracer.event("run.started", party=party, object=object_name,
                          run_id=run_id, role=role, mode=mode)

    def run_settled(self, party, object_name, run_id, role, outcome, seconds):
        self.registry.counter(f"protocol.runs.{outcome}").inc()
        self.registry.histogram("protocol.run_seconds").observe(seconds)
        self.registry.histogram(f"protocol.run_seconds.{role}").observe(seconds)
        self.tracer.span_end("run.settled", seconds, party=party,
                             object=object_name, run_id=run_id, role=role,
                             outcome=outcome)

    def protocol_message(self, party, object_name, run_id, phase,
                         direction, size):
        self.registry.counter(f"protocol.{phase}.{direction}").inc()
        self.registry.counter(f"protocol.{phase}.bytes_{direction}").inc(size)
        self.registry.counter(f"protocol.messages.{direction}").inc()

    def phase_handled(self, party, object_name, phase, seconds):
        self.registry.histogram(f"protocol.{phase}.handle_seconds").observe(seconds)
        self.tracer.span_end("phase.handle", seconds, party=party,
                             object=object_name, phase=phase)

    def validation_decision(self, party, object_name, run_id, accepted,
                            diagnostics):
        verdict = "accepted" if accepted else "rejected"
        self.registry.counter(f"protocol.validation.{verdict}").inc()
        self.tracer.event("validation.decision", party=party,
                          object=object_name, run_id=run_id,
                          accepted=accepted,
                          diagnostics=len(diagnostics))

    # -- causal tracing ----------------------------------------------------

    def causal_message(self, party, object_name, run_id, phase, direction,
                       peer, trace_id, span_id, parent_span_id, lamport):
        self.registry.counter("trace.causal.messages").inc()
        self.tracer.event("causal.message", party=party, object=object_name,
                          run_id=run_id, phase=phase, direction=direction,
                          peer=peer, trace_id=trace_id, span_id=span_id,
                          parent_span_id=parent_span_id, lamport=lamport)

    def causal_decision(self, party, object_name, run_id, trace_id, lamport,
                        accepted, diagnostics):
        self.tracer.event("causal.decision", party=party, object=object_name,
                          run_id=run_id, trace_id=trace_id, lamport=lamport,
                          accepted=accepted,
                          diagnostics="; ".join(diagnostics))

    def causal_outcome(self, party, object_name, run_id, trace_id, lamport,
                       role, outcome):
        self.tracer.event("causal.outcome", party=party, object=object_name,
                          run_id=run_id, trace_id=trace_id, lamport=lamport,
                          role=role, outcome=outcome)

    # -- proposal pipeline -------------------------------------------------

    def batch_proposed(self, party, object_name, run_id, size):
        self.registry.counter("pipeline.batches").inc()
        self.registry.counter("pipeline.batched_updates").inc(size)
        self.registry.histogram("pipeline.batch_size").observe(size)
        self.tracer.event("pipeline.batch", party=party, object=object_name,
                          run_id=run_id, size=size)

    def pipeline_depth(self, party, object_name, depth):
        self.registry.gauge("pipeline.depth").set(depth)

    def pipeline_busy_retry(self, party, object_name, attempt):
        self.registry.counter("pipeline.busy_retries").inc()
        self.tracer.event("pipeline.retry", party=party, object=object_name,
                          attempt=attempt)

    def pipeline_saturated(self, party, object_name, depth):
        self.registry.counter("pipeline.saturated").inc()

    # -- gateway -----------------------------------------------------------

    def gateway_admitted(self, party, object_name, client):
        self.registry.counter("gateway.admitted").inc()

    def gateway_rejected(self, party, object_name, client, reason):
        self.registry.counter("gateway.rejected").inc()
        self.registry.counter(f"gateway.rejected.{reason}").inc()

    def gateway_replayed(self, party, object_name, client):
        self.registry.counter("gateway.replays").inc()

    def gateway_queue_depth(self, party, object_name, depth):
        self.registry.gauge("gateway.queue_depth").set(depth)

    def gateway_settled(self, party, object_name, valid, seconds):
        verdict = "valid" if valid else "invalid"
        self.registry.counter(f"gateway.settled.{verdict}").inc()
        self.registry.histogram("gateway.settle_seconds").observe(seconds)

    def breaker_transition(self, party, object_name, old_state, new_state):
        self.registry.counter("gateway.breaker.transitions").inc()
        self.registry.counter(
            f"gateway.breaker.{old_state}->{new_state}").inc()
        self.tracer.event("gateway.breaker", party=party, object=object_name,
                          old=old_state, new=new_state)

    # -- transport ---------------------------------------------------------

    def message_sent(self, party, recipient, size):
        self.registry.counter("transport.data_sent").inc()
        self.registry.counter("transport.bytes_sent").inc(size)

    def retransmission(self, party, recipient, msg_id, attempt):
        self.registry.counter("transport.retransmissions").inc()
        self.tracer.event("transport.retransmission", party=party,
                          peer=recipient, msg_id=msg_id, attempt=attempt)

    def retry_exhausted(self, party, recipient, msg_id, attempts):
        self.registry.counter("transport.retry_exhausted").inc()
        self.tracer.event("transport.retry_exhausted", party=party,
                          recipient=recipient, msg_id=msg_id,
                          attempts=attempts)

    def duplicate_suppressed(self, party, sender, msg_id):
        self.registry.counter("transport.duplicates_suppressed").inc()
        self.tracer.event("transport.duplicate", party=party,
                          peer=sender, msg_id=msg_id)

    def ack_received(self, party, msg_id):
        self.registry.counter("transport.acks_received").inc()

    def queue_depth(self, party, depth):
        self.registry.gauge("transport.queue_depth").set(depth)

    def raw_send(self, sender, recipient, size, ok):
        self.registry.counter("transport.raw.sent").inc()
        self.registry.counter("transport.raw.bytes_sent").inc(size)
        if not ok:
            self.registry.counter("transport.raw.send_errors").inc()

    def connection_opened(self, party, peer, reconnect):
        self.registry.counter("transport.tcp.connections_opened").inc()
        if reconnect:
            self.registry.counter("transport.tcp.reconnects").inc()
            self.tracer.event("transport.reconnect", party=party, peer=peer)

    def connection_reused(self, party, peer):
        self.registry.counter("transport.tcp.connections_reused").inc()

    def connection_failed(self, party, peer):
        self.registry.counter("transport.tcp.connect_failures").inc()

    def frames_coalesced(self, party, peer, frames):
        self.registry.counter("transport.tcp.batches").inc()
        self.registry.counter("transport.tcp.frames_coalesced").inc(frames)

    def send_traced(self, party, recipient, msg_id, trace_id):
        self.tracer.event("transport.send", party=party, peer=recipient,
                          msg_id=msg_id, trace_id=trace_id)

    # -- crypto ------------------------------------------------------------

    def sign_timing(self, party, scheme, size, seconds):
        self.registry.counter("crypto.sign.count").inc()
        self.registry.histogram("crypto.sign_seconds").observe(seconds)

    def verify_timing(self, scheme, size, seconds, ok):
        self.registry.counter("crypto.verify.count").inc()
        if not ok:
            self.registry.counter("crypto.verify.failures").inc()
        self.registry.histogram("crypto.verify_seconds").observe(seconds)

    def keygen_timing(self, bits, attempts, seconds):
        self.registry.counter("crypto.keygen.count").inc()
        self.registry.counter("crypto.keygen.attempts").inc(attempts)
        self.registry.histogram("crypto.keygen_seconds").observe(seconds)

    # -- storage -----------------------------------------------------------

    def journal_append(self, party, run_id, direction, size, seconds):
        self.registry.counter("storage.journal.appends").inc()
        self.registry.counter("storage.journal.bytes").inc(size)
        self.registry.histogram("storage.journal.append_seconds").observe(seconds)

    def journal_closed(self, party, run_id, outcome):
        self.registry.counter("storage.journal.closed").inc()

    def evidence_append(self, party, kind, size, seconds):
        self.registry.counter("storage.evidence.appends").inc()
        self.registry.counter("storage.evidence.bytes").inc(size)
        self.registry.histogram("storage.evidence.append_seconds").observe(seconds)

    # -- dispute resolution ------------------------------------------------

    def evidence_submitted(self, party, intact):
        self.registry.counter("dispute.submissions").inc()
        if not intact:
            self.registry.counter("dispute.submissions.corrupt").inc()

    def claim_checked(self, claim, outcome, culprits, seconds):
        self.registry.counter("dispute.claims_checked").inc()
        self.registry.counter(f"dispute.rulings.{outcome}").inc()
        self.registry.histogram("dispute.claim_seconds").observe(seconds)
        self.tracer.event("dispute.ruling", claim=claim, outcome=outcome,
                          culprits=", ".join(culprits))

    # -- reporting ---------------------------------------------------------

    def report(self) -> str:
        from repro.obs.report import render_report

        return render_report(self.registry)
