"""Evidence forensics: who proposed, who vetoed, what the evidence proves.

``repro audit`` combines the two artefact streams one coordination run
leaves behind:

* the *evidence* — per-party hash-chained non-repudiation logs holding
  signed proposals, signed responses and authenticated-decision bundles,
  independently re-verifiable by any third party;
* the *traces* — per-party causal records ordered by Lamport clock,
  merged into one timeline by :mod:`repro.obs.merge`.

The evidence is what convicts (signatures cannot be forged); the merged
timeline is what explains (when the veto happened relative to everything
else).  The audit re-verifies every bundle through the existing
:class:`~repro.protocol.dispute.Arbiter` machinery and cross-references
each ruling with the merged trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signature import Verifier
from repro.errors import LogCorruptionError, StorageError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.obs.merge import MergedTrace
from repro.protocol.dispute import Arbiter, Ruling
from repro.protocol.evidence import verify_authenticated_decision
from repro.protocol.messages import SignedPart, VerifierResolver
from repro.protocol.validation import Decision
from repro.storage.log import NonRepudiationLog


@dataclass
class SubmissionStatus:
    """Integrity verdict on one party's submitted evidence log."""

    party_id: str
    intact: bool
    entries: int = 0
    error: str = ""


@dataclass
class RunFinding:
    """Everything the audit established about one coordination run."""

    object_name: str
    run_id: str
    proposer: str = ""
    responders: "list[str]" = field(default_factory=list)
    held_by: "list[str]" = field(default_factory=list)
    authentic: bool = False
    valid: bool = False
    vetoes: "dict[str, list[str]]" = field(default_factory=dict)
    problems: "list[str]" = field(default_factory=list)
    culprits: "list[str]" = field(default_factory=list)
    exonerated: "list[str]" = field(default_factory=list)
    verdict: str = ""
    trace_notes: "list[str]" = field(default_factory=list)


@dataclass
class AuditReport:
    """The full output of one audit pass."""

    submissions: "list[SubmissionStatus]" = field(default_factory=list)
    runs: "list[RunFinding]" = field(default_factory=list)
    rulings: "list[Ruling]" = field(default_factory=list)
    anomalies: "list[dict]" = field(default_factory=list)

    def culprits(self) -> "list[str]":
        names: "set[str]" = set()
        for finding in self.runs:
            names.update(finding.culprits)
        for status in self.submissions:
            if not status.intact:
                names.add(status.party_id)
        return sorted(names)

    def render(self) -> str:
        return render_report(self)


class CorruptEvidenceLog(NonRepudiationLog):
    """Stand-in for an evidence log whose store failed chain replay.

    :class:`NonRepudiationLog` refuses to even construct over a broken
    chain; an auditor still needs to *submit* that log so the corruption
    becomes a recorded finding against its owner.  This shim satisfies
    the arbiter's interface and fails ``verify_chain`` with the original
    error.
    """

    def __init__(self, owner: str, error: str) -> None:
        super().__init__(owner)  # empty in-memory store
        self._error = error

    def verify_chain(self) -> int:
        raise LogCorruptionError(self._error)


def load_evidence_log(party_id: str, path: str) -> NonRepudiationLog:
    """Open one party's file-backed evidence log, tolerating corruption."""
    from repro.storage.backends import FileRecordStore

    store = FileRecordStore(path, fsync=False)
    try:
        return NonRepudiationLog(party_id, store)
    except (LogCorruptionError, StorageError, ValueError, KeyError,
            TypeError) as exc:
        store.close()
        return CorruptEvidenceLog(party_id, f"{path}: {exc}")


def _decision_of(part: SignedPart) -> "Decision | None":
    try:
        return Decision.from_dict(part.payload["decision"])
    except (KeyError, TypeError, ValueError):
        return None


# Diagnostics produced by the systematic checks when two honest parties
# simply race: proposing against a busy or stale replica is contention,
# not misbehaviour, and must not convict the proposer.
_CONTENTION_PREFIXES = ("busy:", "invariant-1:", "invariant-3:")


def _is_contention(diagnostics: "list[str]") -> bool:
    return bool(diagnostics) and all(
        any(d.startswith(p) for p in _CONTENTION_PREFIXES)
        or d == "null state transition"
        for d in diagnostics
    )


def audit_evidence(logs: "dict[str, NonRepudiationLog]",
                   resolver: VerifierResolver,
                   tsa_verifier: "Verifier | None" = None,
                   merged: "MergedTrace | None" = None,
                   obs: "Instrumentation | None" = None) -> AuditReport:
    """Re-verify submitted evidence and build the misbehaviour report.

    *logs* maps party id to that party's evidence log.  A corrupt log is
    itself a finding (the party tampered with its own history); its
    contents carry no weight.  When *merged* is given, every run finding
    is cross-referenced against the merged causal timeline.
    """
    obs = obs if obs is not None else NULL_INSTRUMENTATION
    report = AuditReport()
    arbiter = Arbiter(resolver, tsa_verifier=tsa_verifier, obs=obs)

    intact: "dict[str, NonRepudiationLog]" = {}
    for party_id in sorted(logs):
        submission = arbiter.submit(party_id, logs[party_id])
        status = SubmissionStatus(
            party_id=party_id, intact=submission.log_intact,
            error=submission.log_error,
        )
        if submission.log_intact:
            status.entries = len(logs[party_id])
            intact[party_id] = logs[party_id]
        report.submissions.append(status)

    # Gather every authenticated-decision bundle across intact logs,
    # keyed by run id; remember who holds each.
    bundles: "dict[str, dict]" = {}
    holders: "dict[str, list[str]]" = {}
    for party_id, log in intact.items():
        for entry in log.entries("authenticated-decision"):
            run_id = str(entry.payload.get("run_id", ""))
            if not run_id:
                continue
            holders.setdefault(run_id, []).append(party_id)
            existing = bundles.get(run_id)
            # Prefer the bundle with the most responses: the proposer's
            # copy is complete even when a responder's run was aborted.
            if existing is None or len(entry.payload.get("responses", [])) \
                    > len(existing.get("responses", [])):
                bundles[run_id] = entry.payload

    for run_id in sorted(bundles):
        bundle = bundles[run_id]
        finding = _examine_run(run_id, bundle, holders[run_id],
                               resolver, tsa_verifier)
        _cross_reference(finding, merged)
        report.runs.append(finding)

        # Formal rulings through the arbiter (also feeds instrumentation).
        claimant = holders[run_id][0]
        report.rulings.append(arbiter.rule_on_state_validity(
            finding.object_name, run_id, claimant))
        for culprit in finding.culprits:
            report.rulings.append(arbiter.rule_on_misbehaviour(culprit))
            report.rulings.append(arbiter.rule_on_participation(
                finding.object_name, run_id, culprit))

    if merged is not None:
        report.anomalies = [a.to_dict() for a in merged.anomalies]
    return report


def _examine_run(run_id: str, bundle: dict, held_by: "list[str]",
                 resolver: VerifierResolver,
                 tsa_verifier: "Verifier | None") -> RunFinding:
    verdict = verify_authenticated_decision(
        bundle, resolver, tsa_verifier=tsa_verifier
    )
    finding = RunFinding(
        object_name=verdict.object_name,
        run_id=run_id,
        proposer=verdict.proposer,
        responders=sorted(verdict.responders),
        held_by=sorted(set(held_by)),
        authentic=verdict.authentic,
        valid=verdict.valid,
        problems=list(verdict.problems),
    )
    for raw in bundle.get("responses", []):
        try:
            part = SignedPart.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            continue
        decision = _decision_of(part)
        if decision is not None and not decision.accepted:
            finding.vetoes[part.signer] = list(decision.diagnostics)

    if not finding.authentic:
        # A bundle that does not verify convicts whoever presents it as
        # proof: signatures cannot be checked out of thin air, so the
        # holder is either the forger or is relaying a forgery.
        finding.culprits = finding.held_by
        finding.verdict = ("bundle fails independent verification: "
                           + "; ".join(finding.problems))
    elif finding.valid:
        finding.verdict = (
            f"state validly agreed: unanimous acceptance by "
            f"{finding.responders}, proposed by {finding.proposer}"
        )
        finding.exonerated = sorted(
            set(finding.responders) | {finding.proposer}
        )
    elif finding.vetoes:
        vetoers = sorted(finding.vetoes)
        reasons = "; ".join(
            f"{who}: {', '.join(diags) or 'rejected'}"
            for who, diags in sorted(finding.vetoes.items())
        )
        if all(_is_contention(diags) for diags in finding.vetoes.values()):
            # Every veto stems from the systematic concurrency/staleness
            # checks — two honest proposers raced; nobody cheated.
            finding.exonerated = sorted(
                set(finding.responders) | {finding.proposer}
            )
            finding.verdict = (
                f"proposal by {finding.proposer} rejected by the "
                f"systematic checks ({reasons}) — benign contention, "
                "no misbehaviour established"
            )
        else:
            # Authentic bundle, not unanimous, with at least one
            # application-level veto: the proposer provably proposed a
            # state its peers rejected, and is bound to that proposal by
            # its own signature.  The vetoing responders acted correctly.
            finding.culprits = [finding.proposer]
            finding.exonerated = sorted(set(finding.responders))
            finding.verdict = (
                f"{finding.proposer} proposed a state transition vetoed by "
                f"{vetoers} — signed vetoes prove the proposal was invalid "
                f"({reasons})"
            )
    else:
        finding.verdict = ("run did not reach agreement (incomplete "
                           "response set); no signed veto exists")
        finding.exonerated = sorted(set(finding.responders))
    return finding


def _cross_reference(finding: RunFinding, merged: "MergedTrace | None") -> None:
    """Annotate an evidence finding with the merged causal timeline."""
    if merged is None:
        return
    run = merged.run_for(finding.run_id)
    if run is None:
        finding.trace_notes.append("no trace records for this run")
        return
    finding.trace_notes.append(
        f"trace {run.trace_id[:12]}…: {len(run.events)} causal events "
        f"across {run.participants}"
    )
    for record in run.events:
        if record.get("name") == "causal.decision" \
                and not record.get("accepted", True):
            finding.trace_notes.append(
                f"L{record.get('lamport')}: {record.get('party')} vetoed "
                f"({record.get('diagnostics', '')})"
            )
    for party, outcome in sorted(run.outcomes.items()):
        finding.trace_notes.append(
            f"settled {outcome} at {party}"
        )
    traced_vetoers = {str(r.get("party", "")) for r in run.events
                      if r.get("name") == "causal.decision"
                      and not r.get("accepted", True)}
    evidence_vetoers = set(finding.vetoes)
    if traced_vetoers and evidence_vetoers \
            and traced_vetoers != evidence_vetoers:
        finding.trace_notes.append(
            f"MISMATCH: trace vetoes {sorted(traced_vetoers)} != "
            f"evidence vetoes {sorted(evidence_vetoers)}"
        )
    for anomaly in run.anomalies:
        finding.trace_notes.append(
            f"anomaly {anomaly.kind}: {anomaly.party} — {anomaly.detail}"
        )


def render_report(report: AuditReport) -> str:
    """The human-readable forensic report printed by ``repro audit``."""
    lines: "list[str]" = []
    lines.append("=== evidence audit ===")
    lines.append("")
    lines.append("submissions:")
    for status in report.submissions:
        if status.intact:
            lines.append(f"  {status.party_id}: log intact "
                         f"({status.entries} entries)")
        else:
            lines.append(f"  {status.party_id}: LOG CORRUPT — {status.error}")

    for finding in report.runs:
        lines.append("")
        lines.append(f"run {finding.run_id[:12]} on {finding.object_name!r}:")
        lines.append(f"  proposer:   {finding.proposer or '?'}")
        lines.append(f"  responders: {finding.responders}")
        lines.append(f"  bundle:     held by {finding.held_by}, "
                     f"authentic={finding.authentic} valid={finding.valid}")
        for who, diags in sorted(finding.vetoes.items()):
            lines.append(f"  veto:       {who}: {', '.join(diags) or 'rejected'}")
        lines.append(f"  verdict:    {finding.verdict}")
        if finding.culprits:
            lines.append(f"  culprits:   {finding.culprits}")
        if finding.exonerated:
            lines.append(f"  exonerated: {finding.exonerated}")
        for note in finding.trace_notes:
            lines.append(f"  trace:      {note}")

    if report.rulings:
        lines.append("")
        lines.append("arbiter rulings:")
        for ruling in report.rulings:
            lines.append(f"  [{ruling.outcome}] {ruling.claim}")
            for reason in ruling.reasons:
                lines.append(f"      - {reason}")
            if ruling.culprits:
                lines.append(f"      culprits: {ruling.culprits}")

    if report.anomalies:
        lines.append("")
        lines.append("trace anomalies:")
        for anomaly in report.anomalies:
            lines.append(f"  !! {anomaly.get('kind')}: {anomaly.get('party')}"
                         f" — {anomaly.get('detail')}")

    culprits = report.culprits()
    lines.append("")
    if culprits:
        lines.append(f"MISBEHAVING PARTIES: {culprits}")
    else:
        lines.append("no misbehaviour established")
    return "\n".join(lines)
