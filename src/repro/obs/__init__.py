"""``repro.obs`` — structured tracing and metrics for the middleware.

The subsystem has six parts:

* :mod:`repro.obs.metrics` — counters, gauges and streaming histograms
  in a :class:`MetricsRegistry` (the one statistics implementation);
* :mod:`repro.obs.trace` — a :class:`Tracer` emitting typed span/event
  records to in-memory collectors or JSON-lines files, plus the
  cross-party :class:`TraceContext` / Lamport-clock machinery;
* :mod:`repro.obs.hooks` — the :class:`Instrumentation` hook interface
  threaded through protocol, transport, crypto and storage, with
  :data:`NULL_INSTRUMENTATION` as the zero-overhead default and
  :class:`RecordingInstrumentation` as the recording implementation;
* :mod:`repro.obs.merge` — offline merging of per-party trace files
  into one Lamport-ordered causal timeline with anomaly detection;
* :mod:`repro.obs.audit` — evidence forensics behind ``repro audit``;
* :mod:`repro.obs.live` — the live telemetry plane: per-node
  Prometheus/JSON export endpoint, online SLO watchdogs driving an
  aggregate node health state, and a bounded flight recorder for
  crash-time event dumps.

See ``docs/OBSERVABILITY.md`` for the hook and metric catalogue.
"""

from repro.obs.hooks import (
    NULL_INSTRUMENTATION,
    PHASE_M1,
    PHASE_M2,
    PHASE_M3,
    Instrumentation,
    approx_size,
    approx_size_cached,
)
from repro.obs.merge import (
    Anomaly,
    MergedTrace,
    RunTrace,
    merge_trace_files,
    merge_traces,
    render_timeline,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    exact_quantile,
    summarise,
)
from repro.obs.live import (
    FlightRecorder,
    HealthAlert,
    HealthMonitor,
    HealthRule,
    LiveTelemetry,
    TelemetryServer,
    default_rules,
    render_prometheus,
)
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import format_table, render_report, render_snapshot
from repro.obs.trace import (
    InMemoryCollector,
    JsonLinesExporter,
    LamportClock,
    PartyFilesExporter,
    PartyTraceContext,
    TraceContext,
    TraceRecord,
    Tracer,
    read_jsonl,
    span_id_for,
    trace_id_for_run,
)

__all__ = [
    "Anomaly",
    "AuditReport",
    "LamportClock",
    "MergedTrace",
    "PartyFilesExporter",
    "PartyTraceContext",
    "RunFinding",
    "RunTrace",
    "TraceContext",
    "audit_evidence",
    "merge_trace_files",
    "merge_traces",
    "render_timeline",
    "span_id_for",
    "trace_id_for_run",
    "NULL_INSTRUMENTATION",
    "PHASE_M1",
    "PHASE_M2",
    "PHASE_M3",
    "Instrumentation",
    "approx_size",
    "approx_size_cached",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "exact_quantile",
    "summarise",
    "FlightRecorder",
    "HealthAlert",
    "HealthMonitor",
    "HealthRule",
    "LiveTelemetry",
    "TelemetryServer",
    "default_rules",
    "render_prometheus",
    "RecordingInstrumentation",
    "format_table",
    "render_report",
    "render_snapshot",
    "InMemoryCollector",
    "JsonLinesExporter",
    "TraceRecord",
    "Tracer",
    "read_jsonl",
]

_AUDIT_EXPORTS = ("AuditReport", "RunFinding", "audit_evidence")


def __getattr__(name: str):
    # The audit module pulls in crypto + protocol, which themselves hook
    # back into repro.obs at import time; loading it lazily keeps this
    # package importable from anywhere in that graph.
    if name in _AUDIT_EXPORTS:
        from repro.obs import audit

        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
