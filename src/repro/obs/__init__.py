"""``repro.obs`` — structured tracing and metrics for the middleware.

The subsystem has three parts:

* :mod:`repro.obs.metrics` — counters, gauges and streaming histograms
  in a :class:`MetricsRegistry` (the one statistics implementation);
* :mod:`repro.obs.trace` — a :class:`Tracer` emitting typed span/event
  records to in-memory collectors or a JSON-lines file;
* :mod:`repro.obs.hooks` — the :class:`Instrumentation` hook interface
  threaded through protocol, transport, crypto and storage, with
  :data:`NULL_INSTRUMENTATION` as the zero-overhead default and
  :class:`RecordingInstrumentation` as the recording implementation.

See ``docs/OBSERVABILITY.md`` for the hook and metric catalogue.
"""

from repro.obs.hooks import (
    NULL_INSTRUMENTATION,
    PHASE_M1,
    PHASE_M2,
    PHASE_M3,
    Instrumentation,
    approx_size,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    exact_quantile,
    summarise,
)
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import format_table, render_report
from repro.obs.trace import (
    InMemoryCollector,
    JsonLinesExporter,
    TraceRecord,
    Tracer,
    read_jsonl,
)

__all__ = [
    "NULL_INSTRUMENTATION",
    "PHASE_M1",
    "PHASE_M2",
    "PHASE_M3",
    "Instrumentation",
    "approx_size",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "exact_quantile",
    "summarise",
    "RecordingInstrumentation",
    "format_table",
    "render_report",
    "InMemoryCollector",
    "JsonLinesExporter",
    "TraceRecord",
    "Tracer",
    "read_jsonl",
]
