"""Metric instruments: counters, gauges and streaming histograms.

One statistics implementation for the whole repository.  The benchmark
helpers in :mod:`repro.bench.metrics` delegate here, and the runtime
instrumentation (:mod:`repro.obs.recording`) records into a
:class:`MetricsRegistry` of these instruments.

:class:`StreamingHistogram` estimates quantiles without storing samples:
observations land in geometrically spaced buckets (relative error bounded
by the growth factor), so memory stays O(log(max/min)) however many
values are recorded — suitable for per-message latency on hot paths.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Sequence


def exact_quantile(samples: "Sequence[float]", fraction: float) -> float:
    """Quantile of *samples* with linear interpolation between ranks.

    ``fraction`` is clamped to [0, 1]; an empty sequence yields 0.0.
    This is the repository's single exact-quantile implementation (the
    former ``LatencyRecorder.percentile`` nearest-rank variant returned
    the lower sample for even-count medians and is retired).
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if fraction <= 0.0:
        return ordered[0]
    if fraction >= 1.0:
        return ordered[-1]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def summarise(samples: "Sequence[float]") -> dict:
    """Summary statistics dict shared by recorders and reports."""
    if not samples:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "stddev": 0.0}
    count = len(samples)
    mean = sum(samples) / count
    if count < 2:
        stddev = 0.0
    else:
        stddev = math.sqrt(
            sum((s - mean) ** 2 for s in samples) / (count - 1)
        )
    return {
        "count": count,
        "mean": mean,
        "min": min(samples),
        "max": max(samples),
        "p50": exact_quantile(samples, 0.50),
        "p95": exact_quantile(samples, 0.95),
        "p99": exact_quantile(samples, 0.99),
        "stddev": stddev,
    }


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value plus its high-water mark."""

    __slots__ = ("name", "_value", "_high_water", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._high_water = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            if value > self._high_water:
                self._high_water = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_water(self) -> float:
        return self._high_water

    def snapshot(self) -> dict:
        """Value and high-water mark read under one lock acquisition."""
        with self._lock:
            return {"value": self._value, "high_water": self._high_water}


class StreamingHistogram:
    """Quantile estimation over geometric buckets, without sample storage.

    Positive observations fall into bucket ``floor(log(v) / log(growth))``;
    non-positive observations are tracked separately and report as 0.0.
    Quantile estimates carry at most ``growth - 1`` relative error and are
    clamped to the observed [min, max] range.
    """

    __slots__ = ("name", "_growth", "_log_growth", "_buckets", "_nonpositive",
                 "count", "total", "_min", "_max", "_lock")

    def __init__(self, name: str = "", growth: float = 1.05) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1.0")
        self.name = name
        self._growth = growth
        self._log_growth = math.log(growth)
        self._buckets: "dict[int, int]" = {}
        self._nonpositive = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._nonpositive += 1
            else:
                index = int(math.floor(math.log(value) / self._log_growth))
                self._buckets[index] = self._buckets.get(index, 0) + 1

    def observe_many(self, values: "Iterable[float]") -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def _state(self) -> "tuple[int, float, float, float, int, dict]":
        """One lock-consistent copy of the mutable fields.

        Everything derived (quantiles, summaries, snapshots) computes from
        a copy taken under the lock, so a concurrent ``observe`` can never
        produce a torn read (count/total/buckets from different moments).
        """
        with self._lock:
            return (self.count, self.total, self._min, self._max,
                    self._nonpositive, dict(self._buckets))

    def _quantile_of(self, state, fraction: float) -> float:
        count, _total, minimum, maximum, nonpositive, buckets = state
        if count == 0:
            return 0.0
        minimum = minimum if count else 0.0
        maximum = maximum if count else 0.0
        if fraction <= 0.0:
            return minimum
        if fraction >= 1.0:
            return maximum
        target = fraction * count
        seen = nonpositive
        if seen >= target:
            return min(0.0, maximum)
        for index in sorted(buckets):
            seen += buckets[index]
            if seen >= target:
                # Geometric midpoint of the bucket's bounds.
                estimate = self._growth ** (index + 0.5)
                return max(minimum, min(estimate, maximum))
        return maximum

    def quantile(self, fraction: float) -> float:
        return self._quantile_of(self._state(), fraction)

    def _quantiles_of(self, state, fractions: "tuple[float, ...]") -> "list[float]":
        """All *fractions* (ascending, in (0, 1)) from one bucket walk.

        Equivalent to calling :meth:`_quantile_of` per fraction, but the
        bucket keys are sorted and scanned once — snapshots run on every
        exporter scrape, so the read side should not redo the walk per
        quantile.
        """
        count, _total, minimum, maximum, nonpositive, buckets = state
        if count == 0:
            return [0.0] * len(fractions)
        targets = [fraction * count for fraction in fractions]
        results: "list[float]" = []
        seen = nonpositive
        while len(results) < len(targets) and seen >= targets[len(results)]:
            results.append(min(0.0, maximum))
        if len(results) < len(targets):
            for index in sorted(buckets):
                seen += buckets[index]
                while (len(results) < len(targets)
                       and seen >= targets[len(results)]):
                    estimate = self._growth ** (index + 0.5)
                    results.append(max(minimum, min(estimate, maximum)))
                if len(results) == len(targets):
                    break
        while len(results) < len(targets):
            results.append(maximum)
        return results

    def snapshot(self) -> dict:
        """Summary statistics from one lock-consistent state copy."""
        state = self._state()
        count, total = state[0], state[1]
        p50, p95, p99 = self._quantiles_of(state, (0.50, 0.95, 0.99))
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": state[2] if count else 0.0,
            "max": state[3] if count else 0.0,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def summary(self) -> dict:
        return self.snapshot()


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, StreamingHistogram]" = {}

    # Lookups fast-path around the lock: dict reads are atomic under the
    # GIL and instruments are never removed, so a hit needs no lock and
    # only creation synchronises.

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, growth: float = 1.05) -> StreamingHistogram:
        instrument = self._histograms.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = StreamingHistogram(
                    name, growth=growth
                )
            return instrument

    # -- read side ---------------------------------------------------------

    def counter_value(self, name: str) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def counters(self) -> "dict[str, int]":
        with self._lock:
            instruments = sorted(self._counters.items())
        return {name: c.snapshot() for name, c in instruments}

    def gauges(self) -> "dict[str, dict]":
        with self._lock:
            instruments = sorted(self._gauges.items())
        return {name: g.snapshot() for name, g in instruments}

    def histograms(self) -> "dict[str, dict]":
        with self._lock:
            instruments = sorted(self._histograms.items())
        return {name: h.snapshot() for name, h in instruments}

    def snapshot(self) -> dict:
        """Registry-wide snapshot, safe against concurrent writers.

        The instrument maps are copied under the registry lock (so an
        instrument created mid-snapshot cannot corrupt iteration) and each
        instrument then snapshots itself under its own lock, so every
        individual reading is internally consistent — a histogram's count,
        sum and quantiles always describe the same set of observations.
        Readings across *different* instruments remain only approximately
        simultaneous; that is the documented granularity.
        """
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }
