"""The instrumentation hook interface threaded through the runtime layers.

Every layer that does observable work — protocol engines, the reliable
transport, the crypto substrate, the storage stores — holds an
:class:`Instrumentation` and calls its typed hook methods at the
interesting moments.  The base class is a complete no-op with
``enabled = False``; hot paths guard any measurement work (sizing a
message, reading a performance counter) behind that flag, so an
uninstrumented deployment pays one attribute read per hook site and
nothing else.

:class:`~repro.obs.recording.RecordingInstrumentation` is the production
implementation, turning hook calls into registry metrics and trace
records.  Tests may subclass :class:`Instrumentation` directly to probe a
single hook.
"""

from __future__ import annotations

# Protocol phases of the state-coordination run (sections 4.3/4.4).
PHASE_M1 = "m1"  # propose
PHASE_M2 = "m2"  # respond
PHASE_M3 = "m3"  # commit

SENT = "sent"
RECEIVED = "received"


# Decimal digits per bit, for sizing integers without str() allocation.
_DIGITS_PER_BIT = 0.30103


def _approx(value) -> int:
    # Exact-type dispatch with scalar leaves inlined in the container
    # loops: this walks every protocol message when recording, so per-
    # node function calls and isinstance chains are what it must avoid.
    kind = type(value)
    if kind is str:
        return len(value) + 2
    if kind is bool:
        return 4 if value else 5
    if kind is int:
        return 1 + int(value.bit_length() * _DIGITS_PER_BIT) + (value < 0)
    if value is None:
        return 4
    if kind is dict:
        total = 2 + max(0, len(value) - 1)
        for key, item in value.items():
            if type(key) is not str:
                raise TypeError("canonical encoding requires str keys")
            inner = type(item)
            if inner is str:
                total += len(key) + len(item) + 5
            elif inner is int:
                total += (len(key) + 4 + (item < 0)
                          + int(item.bit_length() * _DIGITS_PER_BIT))
            else:
                total += len(key) + 3 + _approx(item)
        return total
    if kind is list or kind is tuple:
        total = 2 + max(0, len(value) - 1)
        for item in value:
            inner = type(item)
            if inner is str:
                total += len(item) + 2
            elif inner is int:
                total += (1 + int(item.bit_length() * _DIGITS_PER_BIT)
                          + (item < 0))
            else:
                total += _approx(item)
        return total
    if kind is bytes:
        # {"__b64__":"<base64>"} wrapper around the padded encoding.
        return 14 + 4 * ((len(value) + 2) // 3)
    if kind is float:
        # {"__float__":"<repr>"} wrapper.
        return 15 + len(repr(value))
    if isinstance(value, (str, int, dict, list, tuple, bytes, float)):
        # Subclasses (rare in protocol data) take the generic path.
        if isinstance(value, str):
            return len(value) + 2
        if isinstance(value, bool):
            return 4 if value else 5
        if isinstance(value, int):
            return (1 + int(value.bit_length() * _DIGITS_PER_BIT)
                    + (value < 0))
        if isinstance(value, dict):
            return _approx(dict(value))
        if isinstance(value, (list, tuple)):
            return _approx(list(value))
        if isinstance(value, bytes):
            return 14 + 4 * ((len(value) + 2) // 3)
        return 15 + len(repr(float(value)))
    raise TypeError("not canonically encodable")


def approx_size(value) -> int:
    """Approximate canonical-encoding size of a message, 0 when unencodable.

    Structural estimate of ``len(canonical_bytes(value))`` — exact for
    ASCII payloads bar integer-digit rounding — computed without
    serialising anything: this runs on the protocol hot path for every
    message when instrumentation is recording, and a full JSON encode
    per event is where an instrumented run loses most of its time.
    """
    try:
        return _approx(value)
    except TypeError:
        return 0


#: Single-slot identity memo for :func:`approx_size_cached`.  Holding a
#: strong reference to the last-sized object pins it, so its id cannot
#: be recycled while the memo entry is alive — an ``is`` hit is always
#: the same object, never a lookalike at a reused address.
_last_sized: "tuple | None" = None


def approx_size_cached(value) -> int:
    """:func:`approx_size` with a memo for the immediately-repeated case.

    A protocol broadcast shares one message dict between the sender's
    accounting and (in-process transports) every recipient's, so the
    same object is sized several times in a row.  The memo only ever
    remembers the most recent object: sized dicts are treated as frozen
    by the protocol layer once they are on the wire, and a single slot
    cannot go stale across unrelated messages.
    """
    global _last_sized
    memo = _last_sized
    if memo is not None and memo[0] is value:
        return memo[1]
    size = approx_size(value)
    _last_sized = (value, size)
    return size


class Instrumentation:
    """No-op hook interface; override any subset of methods.

    All hooks must stay cheap and exception-free: they run inline on
    protocol hot paths.  ``enabled`` gates the *callers'* measurement
    work — an implementation that records must set it True, and code
    producing hook arguments that cost anything (sizes, timings) must
    skip that work when it is False.
    """

    enabled = False

    # -- protocol (engine_base.py / coordination.py) -----------------------

    def run_started(self, party: str, object_name: str, run_id: str,
                    role: str, mode: str) -> None:
        """A coordination run began at this party (as proposer/responder)."""

    def run_settled(self, party: str, object_name: str, run_id: str,
                    role: str, outcome: str, seconds: float) -> None:
        """A run reached its outcome; *seconds* is protocol-clock elapsed."""

    def protocol_message(self, party: str, object_name: str, run_id: str,
                         phase: str, direction: str, size: int) -> None:
        """One m1/m2/m3 message was sent or received (*size* in bytes)."""

    def phase_handled(self, party: str, object_name: str, phase: str,
                      seconds: float) -> None:
        """Span: processing one inbound phase message (verify + decide)."""

    def validation_decision(self, party: str, object_name: str, run_id: str,
                            accepted: bool, diagnostics: "list[str]") -> None:
        """A responder decided on a proposal (systematic + app checks)."""

    # -- causal tracing (engine_base.py / coordination.py) -----------------

    def causal_message(self, party: str, object_name: str, run_id: str,
                       phase: str, direction: str, peer: str,
                       trace_id: str, span_id: str, parent_span_id: str,
                       lamport: int) -> None:
        """One protocol message with its cross-party causal context.

        Fired alongside :meth:`protocol_message` for m1/m2/m3 traffic;
        *parent_span_id* links a receive to the send that caused it.
        """

    def causal_decision(self, party: str, object_name: str, run_id: str,
                        trace_id: str, lamport: int, accepted: bool,
                        diagnostics: "list[str]") -> None:
        """A validation decision placed on the causal timeline."""

    def causal_outcome(self, party: str, object_name: str, run_id: str,
                       trace_id: str, lamport: int, role: str,
                       outcome: str) -> None:
        """A run settlement placed on the causal timeline."""

    # -- proposal pipeline (protocol/pipeline.py / coordination.py) --------

    def batch_proposed(self, party: str, object_name: str, run_id: str,
                       size: int) -> None:
        """A batched proposal left with *size* updates in one run."""

    def pipeline_depth(self, party: str, object_name: str,
                       depth: int) -> None:
        """Current number of updates queued in a proposal pipeline."""

    def pipeline_busy_retry(self, party: str, object_name: str,
                            attempt: int) -> None:
        """A pipeline re-queued a batch vetoed for benign contention."""

    def pipeline_saturated(self, party: str, object_name: str,
                           depth: int) -> None:
        """A bounded pipeline rejected a submit at *depth* queued updates."""

    # -- shard scheduler (core/shards.py / core/node.py) -------------------

    def shard_dispatch(self, party: str, shard: int, depth: int) -> None:
        """An inbound message was routed to a shard worker queue.

        *depth* is the queue depth observed at routing time — the live
        measure of how far a shard is behind its inbound traffic.
        """

    def shard_settled(self, party: str, shard: int, object_name: str,
                      valid: bool) -> None:
        """A state run settled on this shard (per-shard throughput)."""

    # -- read cache (core/readcache.py) ------------------------------------

    def read_served(self, party: str, object_name: str, mode: str,
                    hit: bool, staleness: float) -> None:
        """A validated read was served from the snapshot cache.

        *mode* is ``"settled"``/``"bounded"``/``"cached"``; *hit* is True
        when the published snapshot answered without a refresh;
        *staleness* is seconds since publication at serve time (0.0 for
        a refresh).
        """

    def snapshot_published(self, party: str, object_name: str,
                           version: int, settle_seq: int) -> None:
        """A settlement (or refresh) published a new validated snapshot."""

    def snapshot_invalidated(self, party: str, object_name: str,
                             reason: str) -> None:
        """A published snapshot was dropped (``"crash"``/``"recovery"``)."""

    # -- gateway (gateway/gateway.py) --------------------------------------

    def gateway_admitted(self, party: str, object_name: str,
                         client: str) -> None:
        """A client request passed admission into the gateway queue."""

    def gateway_rejected(self, party: str, object_name: str, client: str,
                         reason: str, retry_after: float = 0.0) -> None:
        """A client request was refused pre-coordination.

        *reason* is one of ``"rate_limited"`` (token bucket empty),
        ``"overloaded"`` (shed by load leveling) or ``"circuit_open"``
        (failing fast on a degraded community); *retry_after* is the
        back-off the client was told to observe, in seconds.
        """

    def gateway_replayed(self, party: str, object_name: str,
                         client: str) -> None:
        """An idempotent retry was served from the replay cache."""

    def gateway_queue_depth(self, party: str, object_name: str,
                            depth: int) -> None:
        """Current depth of a gateway admission queue."""

    def gateway_settled(self, party: str, object_name: str, valid: bool,
                        seconds: float) -> None:
        """A gateway request settled end to end (*seconds* admission to
        outcome, on the protocol clock)."""

    def breaker_transition(self, party: str, object_name: str,
                           old_state: str, new_state: str) -> None:
        """A community circuit breaker changed state (closed/open/half_open)."""

    # -- online health (obs/live/health.py) --------------------------------

    def health_alert(self, party: str, rule: str, severity: str,
                     message: str, value: float, threshold: float) -> None:
        """An online SLO watchdog rule started firing at this node.

        *severity* is ``"degraded"`` or ``"unhealthy"``; *value* is the
        observed reading that crossed *threshold*.  Fired once per firing
        episode (not on every evaluation while the rule stays red).
        """

    def health_changed(self, party: str, old_state: str,
                       new_state: str) -> None:
        """A node's aggregate health moved (healthy/degraded/unhealthy)."""

    # -- transport (reliable.py / tcp.py) ----------------------------------

    def message_sent(self, party: str, recipient: str, size: int) -> None:
        """The reliable layer accepted a payload for delivery."""

    def retransmission(self, party: str, recipient: str, msg_id: str,
                       attempt: int) -> None:
        """An unacknowledged message was sent again."""

    def retry_exhausted(self, party: str, recipient: str, msg_id: str,
                        attempts: int) -> None:
        """A bounded-retry send was abandoned."""

    def duplicate_suppressed(self, party: str, sender: str,
                             msg_id: str) -> None:
        """A data message arrived again and was dropped before the engine."""

    def ack_received(self, party: str, msg_id: str) -> None:
        """An outstanding message was acknowledged."""

    def queue_depth(self, party: str, depth: int) -> None:
        """Current number of unacknowledged outbound messages."""

    def raw_send(self, sender: str, recipient: str, size: int,
                 ok: bool) -> None:
        """A raw network transmission attempt (e.g. one TCP connection)."""

    def connection_opened(self, party: str, peer: str,
                          reconnect: bool) -> None:
        """The pooled TCP transport opened a connection to *peer*.

        *reconnect* is True when a previous connection to the same peer
        existed and broke — i.e. this open is a transparent recovery.
        """

    def connection_reused(self, party: str, peer: str) -> None:
        """A frame batch rode an already-open pooled connection."""

    def connection_failed(self, party: str, peer: str) -> None:
        """A pooled connect attempt failed; queued frames were dropped."""

    def frames_coalesced(self, party: str, peer: str, frames: int) -> None:
        """*frames* (> 1) back-to-back frames left in one ``sendall``."""

    def frame_encoded(self, codec: str, size: int, seconds: float) -> None:
        """One outbound envelope was framed (*size* on-wire bytes).

        *codec* is ``"json"`` or ``"binary"``; *seconds* covers the
        full envelope encode, including a memo hit on the encode-once
        broadcast path (so the histogram shows the amortised cost).
        """

    def frame_decoded(self, codec: str, size: int, seconds: float) -> None:
        """One inbound frame of *size* bytes was decoded back to a dict."""

    def malformed_frame(self, party: str, reason: str) -> None:
        """An inbound frame failed framing or decoding and was dropped.

        *reason* is a short classifier (``"oversized"``, ``"decode"``,
        ``"bad-envelope"``, ``"framing"``) — garbage on the wire is an
        intruder signal, so it must be counted, never swallowed.
        """

    def handler_error(self, party: str, kind: str) -> None:
        """A transport-driven callback raised and was contained.

        *kind* is ``"command"`` (a reactor command closure),
        ``"timer"`` (a timer-wheel or reactor-heap callback) or
        ``"dispatch"`` (the inbound envelope handler).  Like malformed
        frames, these are counted and flight-recorded rather than
        swallowed: a silently-dying handler is how a node wedges with no
        trace.
        """

    def send_traced(self, party: str, recipient: str, msg_id: str,
                    trace_id: str) -> None:
        """The reliable layer bound transport *msg_id* to a trace.

        Lets offline analysis attribute retransmission storms and
        duplicate floods (which only know message ids) to protocol runs.
        """

    # -- crypto (rsa.py / signature.py) ------------------------------------

    def sign_timing(self, party: str, scheme: str, size: int,
                    seconds: float) -> None:
        """One signature was produced over *size* bytes."""

    def verify_timing(self, scheme: str, size: int, seconds: float,
                      ok: bool) -> None:
        """One signature verification completed (*ok*: it verified)."""

    def keygen_timing(self, bits: int, attempts: int,
                      seconds: float) -> None:
        """A key pair was generated after *attempts* prime draws."""

    # -- storage (journal.py / log.py) -------------------------------------

    def journal_append(self, party: str, run_id: str, direction: str,
                       size: int, seconds: float) -> None:
        """One message record was appended to the journal store."""

    def journal_closed(self, party: str, run_id: str, outcome: str) -> None:
        """A run's journal was closed with *outcome*."""

    def evidence_append(self, party: str, kind: str, size: int,
                        seconds: float) -> None:
        """One entry was appended to the non-repudiation log."""

    # -- dispute resolution (dispute.py) -----------------------------------

    def evidence_submitted(self, party: str, intact: bool) -> None:
        """An arbiter accepted one party's evidence log submission."""

    def claim_checked(self, claim: str, outcome: str,
                      culprits: "list[str]", seconds: float) -> None:
        """An arbiter ruled on one claim (audits are measurable too)."""


#: Shared default instance: every layer's "observability off" value.
NULL_INSTRUMENTATION = Instrumentation()
