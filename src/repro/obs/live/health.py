"""Online SLO watchdogs: declarative health rules over the live registry.

The post-hoc `repro obs-report` tells you a breaker flapped *after* the
process exits; production operation needs the answer while the incident
is still happening.  A :class:`HealthMonitor` periodically snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` and evaluates declarative
:class:`HealthRule` instances against the pair (current snapshot,
previous snapshot) — counter rates and deltas, gauge levels, quantile
budgets, stalled-run detection.  A rule crossing its threshold opens a
*firing episode*: exactly one structured :class:`HealthAlert` is emitted
(via the :meth:`~repro.obs.hooks.Instrumentation.health_alert` hook) when
the episode opens, rather than on every evaluation while the rule stays
red.  The worst severity among firing rules is the node's aggregate
health (``healthy``/``degraded``/``unhealthy``), surfaced through
``node.health()``, the telemetry endpoint and the
:meth:`~repro.obs.hooks.Instrumentation.health_changed` hook.

The monitor runs three ways: :meth:`HealthMonitor.evaluate_once` for
deterministic tests, :meth:`HealthMonitor.schedule_on` as a recurring
virtual-time timer inside the simulation runtime, and
:meth:`HealthMonitor.start` as a daemon watchdog thread against real
deployments.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.hooks import Instrumentation, NULL_INSTRUMENTATION
from repro.obs.metrics import MetricsRegistry

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_RANK = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthAlert:
    """One rule opening a firing episode at one node."""

    rule: str
    severity: str
    message: str
    value: float
    threshold: float
    time: float

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "value": self.value,
                "threshold": self.threshold, "time": self.time}


class RuleView:
    """What a rule may look at: two registry snapshots and the gap between.

    All accessors tolerate missing instruments (a subsystem that never
    ran) by returning zeros, so rules never raise on a fresh registry.
    """

    def __init__(self, current: dict, previous: dict,
                 elapsed: float, now: float) -> None:
        self.current = current
        self.previous = previous
        self.elapsed = elapsed
        self.now = now

    def counter(self, name: str) -> int:
        return self.current.get("counters", {}).get(name, 0)

    def counter_delta(self, name: str) -> int:
        before = self.previous.get("counters", {}).get(name, 0)
        return self.counter(name) - before

    def rate(self, name: str) -> float:
        """Counter increase per second over the evaluation interval."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.counter_delta(name) / self.elapsed

    def gauge(self, name: str) -> float:
        entry = self.current.get("gauges", {}).get(name)
        return entry["value"] if entry else 0.0

    def gauge_high_water(self, name: str) -> float:
        entry = self.current.get("gauges", {}).get(name)
        return entry["high_water"] if entry else 0.0

    def histogram(self, name: str) -> dict:
        return self.current.get("histograms", {}).get(name, {})

    def quantile(self, name: str, key: str = "p99") -> float:
        return self.histogram(name).get(key, 0.0)

    def histogram_count(self, name: str) -> int:
        return self.histogram(name).get("count", 0)


class HealthRule:
    """One declarative SLO check.

    Subclasses implement :meth:`reading`, returning the observed value to
    compare against :attr:`threshold` (fires when reading > threshold),
    or override :meth:`evaluate` entirely for stateful rules.
    """

    def __init__(self, name: str, threshold: float,
                 severity: str = DEGRADED, message: str = "") -> None:
        if severity not in (DEGRADED, UNHEALTHY):
            raise ValueError("rule severity must be degraded or unhealthy")
        self.name = name
        self.threshold = float(threshold)
        self.severity = severity
        self.message = message or name

    def reading(self, view: RuleView) -> float:
        raise NotImplementedError

    def evaluate(self, view: RuleView) -> "Optional[float]":
        """The firing reading, or None when the rule is green."""
        value = self.reading(view)
        return value if value > self.threshold else None


class CounterRateRule(HealthRule):
    """Fires when a counter grows faster than *threshold* per second.

    e.g. a retransmission storm: ``transport.retransmissions`` climbing
    at tens per second means a peer is dark or the network is melting.
    """

    def __init__(self, name: str, counter: str, threshold: float,
                 severity: str = DEGRADED, message: str = "") -> None:
        super().__init__(name, threshold, severity, message)
        self.counter_name = counter

    def reading(self, view: RuleView) -> float:
        return view.rate(self.counter_name)


class CounterDeltaRule(HealthRule):
    """Fires when a counter grew by more than *threshold* this interval.

    e.g. breaker flapping: any ``gateway.breaker.transitions`` growth
    within a watchdog interval is an event worth alerting on.
    """

    def __init__(self, name: str, counter: str, threshold: float,
                 severity: str = DEGRADED, message: str = "") -> None:
        super().__init__(name, threshold, severity, message)
        self.counter_name = counter

    def reading(self, view: RuleView) -> float:
        return float(view.counter_delta(self.counter_name))


class GaugeLevelRule(HealthRule):
    """Fires while a gauge's current value exceeds *threshold*.

    e.g. queue/pipeline saturation: depth pinned above the high-water
    line means admission is outrunning settlement.
    """

    def __init__(self, name: str, gauge: str, threshold: float,
                 severity: str = DEGRADED, message: str = "") -> None:
        super().__init__(name, threshold, severity, message)
        self.gauge_name = gauge

    def reading(self, view: RuleView) -> float:
        return view.gauge(self.gauge_name)


class QuantileBudgetRule(HealthRule):
    """Fires when a histogram quantile exceeds its latency budget.

    Requires at least *min_count* observations so a single slow warm-up
    sample cannot page anyone.
    """

    def __init__(self, name: str, histogram: str, budget: float,
                 quantile: str = "p99", min_count: int = 10,
                 severity: str = DEGRADED, message: str = "") -> None:
        super().__init__(name, budget, severity, message)
        self.histogram_name = histogram
        self.quantile_key = quantile
        self.min_count = min_count

    def reading(self, view: RuleView) -> float:
        if view.histogram_count(self.histogram_name) < self.min_count:
            return 0.0
        return view.quantile(self.histogram_name, self.quantile_key)


class StalledRunsRule(HealthRule):
    """Fires when in-flight coordination runs make no settlement progress.

    A run being open across one evaluation is normal; the same runs
    still open with zero settlements for *strikes* consecutive intervals
    means coordination is stalled (crashed responder, wedged transport).
    The strike counter is internal state, so one monitor owns one rule
    instance.
    """

    def __init__(self, name: str = "stalled_runs", strikes: int = 2,
                 severity: str = UNHEALTHY, message: str = "") -> None:
        super().__init__(name, 0.0, severity,
                         message or "coordination runs stalled")
        if strikes < 1:
            raise ValueError("strikes must be at least 1")
        self.strikes = strikes
        self._strike_count = 0

    def _in_flight(self, view: RuleView) -> int:
        started = view.counter("protocol.runs.started")
        settled = (view.counter("protocol.runs.valid")
                   + view.counter("protocol.runs.invalid"))
        return started - settled

    def evaluate(self, view: RuleView) -> "Optional[float]":
        in_flight = self._in_flight(view)
        settled_delta = (view.counter_delta("protocol.runs.valid")
                         + view.counter_delta("protocol.runs.invalid"))
        if in_flight > 0 and settled_delta == 0:
            self._strike_count += 1
        else:
            self._strike_count = 0
        if self._strike_count >= self.strikes:
            return float(in_flight)
        return None


def default_rules(retransmission_rate: float = 25.0,
                  breaker_transitions: float = 0.0,
                  queue_depth: float = 64.0,
                  pipeline_depth: float = 64.0,
                  settle_budget: float = 30.0,
                  stall_strikes: int = 2) -> "list[HealthRule]":
    """The issue's five watchdogs with overridable thresholds.

    ``breaker_transitions`` is a delta threshold: the default 0 fires on
    *any* breaker movement within an interval (a trip is always news).
    """
    return [
        StalledRunsRule(strikes=stall_strikes),
        CounterRateRule(
            "retransmission_storm", "transport.retransmissions",
            retransmission_rate,
            message="retransmissions exceed storm threshold"),
        CounterDeltaRule(
            "breaker_flap", "gateway.breaker.transitions",
            breaker_transitions, severity=DEGRADED,
            message="circuit breaker changed state"),
        GaugeLevelRule(
            "gateway_queue_saturation", "gateway.queue_depth",
            queue_depth, message="gateway admission queue saturated"),
        GaugeLevelRule(
            "pipeline_saturation", "pipeline.depth",
            pipeline_depth, message="proposal pipeline saturated"),
        QuantileBudgetRule(
            "settle_latency_budget", "gateway.settle_seconds",
            settle_budget, message="gateway settle p99 over budget"),
    ]


class HealthMonitor:
    """Periodic rule evaluation driving aggregate node health."""

    def __init__(self, registry: MetricsRegistry,
                 rules: "Optional[list[HealthRule]]" = None,
                 obs: "Optional[Instrumentation]" = None,
                 party: str = "node",
                 interval: float = 1.0,
                 clock: "Optional[Callable[[], float]]" = None,
                 flight=None,
                 dump_path: "Optional[str]" = None,
                 max_alerts: int = 256) -> None:
        self.registry = registry
        self.rules = rules if rules is not None else default_rules()
        self.obs = obs if obs is not None else NULL_INSTRUMENTATION
        self.party = party
        self.interval = interval
        self._clock = clock if clock is not None else time.time
        self.flight = flight
        self.dump_path = dump_path
        self.alerts: "deque[HealthAlert]" = deque(maxlen=max_alerts)
        self.transitions: "list[tuple[float, str, str]]" = []
        self._firing: "set[str]" = set()
        self._health = HEALTHY
        self._lock = threading.Lock()
        self._thread: "Optional[threading.Thread]" = None
        self._stop = threading.Event()
        # Baseline so the first evaluation sees deltas, not totals.
        self._previous = registry.snapshot()
        self._previous_time = self._clock()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    @property
    def health(self) -> str:
        return self._health

    def firing(self) -> "set[str]":
        with self._lock:
            return set(self._firing)

    def evaluate_once(self) -> "list[HealthAlert]":
        """Run every rule against a fresh snapshot; returns new alerts."""
        with self._lock:
            now = self._clock()
            current = self.registry.snapshot()
            elapsed = max(now - self._previous_time, 1e-9)
            view = RuleView(current, self._previous, elapsed, now)
            new_alerts: "list[HealthAlert]" = []
            firing_now: "set[str]" = set()
            worst = HEALTHY
            for rule in self.rules:
                value = rule.evaluate(view)
                if value is None:
                    continue
                firing_now.add(rule.name)
                if _RANK[rule.severity] > _RANK[worst]:
                    worst = rule.severity
                if rule.name not in self._firing:
                    alert = HealthAlert(rule.name, rule.severity,
                                        rule.message, value,
                                        rule.threshold, now)
                    new_alerts.append(alert)
                    self.alerts.append(alert)
            self._firing = firing_now
            old_health = self._health
            self._health = worst
            self._previous = current
            self._previous_time = now

        # Hooks run outside the monitor lock: a recording obs may itself
        # touch the registry (health.* counters) or the flight ring.
        for alert in new_alerts:
            self.obs.health_alert(self.party, alert.rule, alert.severity,
                                  alert.message, alert.value,
                                  alert.threshold)
        if worst != old_health:
            self.transitions.append((now, old_health, worst))
            self.obs.health_changed(self.party, old_health, worst)
        if new_alerts and self.flight is not None and self.dump_path:
            self.flight.dump(self.dump_path)
        return new_alerts

    def status(self) -> dict:
        with self._lock:
            return {
                "party": self.party,
                "health": self._health,
                "firing": sorted(self._firing),
                "alerts": [alert.to_dict() for alert in self.alerts],
                "transitions": [
                    {"time": t, "from": old, "to": new}
                    for t, old, new in self.transitions
                ],
            }

    # ------------------------------------------------------------------
    # drivers: watchdog thread (real time) or recurring sim timer
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the real-time watchdog thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.evaluate_once()

        self._thread = threading.Thread(
            target=loop, name=f"health-{self.party}", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def schedule_on(self, network, interval: "Optional[float]" = None):
        """Recurring evaluation on a sim network's virtual-time queue.

        Returns a handle with ``cancel()``; cancel it before asking the
        runtime to settle to quiescence, or the recurring timer keeps
        the event queue alive forever.
        """
        tick = interval if interval is not None else self.interval
        state = {"cancelled": False, "handle": None}

        def fire() -> None:
            if state["cancelled"]:
                return
            self.evaluate_once()
            if not state["cancelled"]:
                state["handle"] = network.schedule(tick, fire)

        state["handle"] = network.schedule(tick, fire)

        class _Recurring:
            def cancel(self) -> None:
                state["cancelled"] = True
                handle = state["handle"]
                if handle is not None:
                    handle.cancel()

        return _Recurring()
