"""``repro.obs.live`` — the live telemetry plane.

Turns the post-hoc observability of :mod:`repro.obs` into an operational
loop: a Prometheus/JSON export endpoint per node
(:mod:`~repro.obs.live.exporter`), online SLO watchdogs driving an
aggregate node health state (:mod:`~repro.obs.live.health`), and a
bounded flight recorder capturing recent protocol/transport/gateway
events for crash-time dumps (:mod:`~repro.obs.live.flight`).

:class:`LiveTelemetry` bundles the three against one
:class:`~repro.core.node.OrganisationNode`; nodes expose it lazily via
``node.live()`` the same way the gateway hangs off ``node.gateway()``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.live.exporter import TelemetryServer, render_prometheus
from repro.obs.live.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.live.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    CounterDeltaRule,
    CounterRateRule,
    GaugeLevelRule,
    HealthAlert,
    HealthMonitor,
    HealthRule,
    QuantileBudgetRule,
    RuleView,
    StalledRunsRule,
    default_rules,
)

__all__ = [
    "CounterDeltaRule",
    "CounterRateRule",
    "DEFAULT_CAPACITY",
    "DEGRADED",
    "FlightRecorder",
    "GaugeLevelRule",
    "HEALTHY",
    "HealthAlert",
    "HealthMonitor",
    "HealthRule",
    "LiveTelemetry",
    "QuantileBudgetRule",
    "RuleView",
    "StalledRunsRule",
    "TelemetryServer",
    "UNHEALTHY",
    "default_rules",
    "render_prometheus",
]


class LiveTelemetry:
    """One node's live telemetry plane: recorder + watchdog + endpoint.

    Requires the node to carry a recording instrumentation (anything
    with a ``registry``); attaches a :class:`FlightRecorder` to it,
    builds a :class:`HealthMonitor` over the registry, and can serve
    both over HTTP via :meth:`serve`.  :meth:`start` picks the right
    watchdog driver for the node's runtime — a recurring virtual-time
    timer under :class:`~repro.core.runtime.SimRuntime`, a daemon thread
    otherwise.
    """

    def __init__(self, node, rules=None, interval: float = 1.0,
                 flight_capacity: int = DEFAULT_CAPACITY,
                 dump_path: "Optional[str]" = None) -> None:
        obs = node.ctx.obs
        registry = getattr(obs, "registry", None)
        if registry is None:
            raise ValueError(
                "live telemetry needs a recording instrumentation on the "
                "node (an obs with a .registry); build the community with "
                "RecordingInstrumentation first"
            )
        self.node = node
        self.obs = obs
        self.registry = registry
        # Reuse a recorder already attached to the instrumentation (its
        # ring may hold history worth keeping) rather than replacing it;
        # either way the node's clock drives the timestamps.
        existing = getattr(obs, "flight", None)
        if existing is not None:
            existing.bind_clock(node.ctx.clock)
            self.flight = existing
        else:
            self.flight = FlightRecorder(flight_capacity,
                                         clock=node.ctx.clock)
            obs.flight = self.flight
        self.monitor = HealthMonitor(
            registry, rules=rules, obs=obs, party=node.party_id,
            interval=interval, clock=node.ctx.clock.now,
            flight=self.flight, dump_path=dump_path,
        )
        self.server: "Optional[TelemetryServer]" = None
        self._timer = None
        self._started = False

    @property
    def health(self) -> str:
        return self.monitor.health

    def start(self) -> "LiveTelemetry":
        """Start the watchdog (sim timer or daemon thread); idempotent."""
        if self._started:
            return self
        self._started = True
        # Imported here, not at module scope: repro.obs must stay
        # importable from the transport/runtime layers without a cycle.
        from repro.core.runtime import SimRuntime

        if isinstance(self.node.runtime, SimRuntime):
            self._timer = self.monitor.schedule_on(
                self.node.runtime.network, self.monitor.interval)
        else:
            self.monitor.start()
        return self

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> TelemetryServer:
        """Start (or return) the node's HTTP telemetry endpoint."""
        if self.server is None:
            self.server = TelemetryServer(
                self.registry, monitor=self.monitor, flight=self.flight,
                host=host, port=port,
            ).start()
        return self.server

    def stop(self) -> None:
        """Stop watchdog and endpoint; the flight ring stays readable.

        Under a sim runtime this cancels the recurring timer — required
        before ``community.settle(None)``, which runs the virtual event
        queue to quiescence.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.monitor.stop()
        if self.server is not None:
            self.server.stop()
            self.server = None
        self._started = False

    def dump_flight(self, target) -> int:
        """Dump the flight ring to *target* (path or file object)."""
        return self.flight.dump(target)
