"""The protocol flight recorder: bounded post-mortem context capture.

Always-on tracing is too expensive for production and post-hoc tracing is
too late — by the time an operator re-runs a workload with tracing
enabled, the interesting failure is gone.  A :class:`FlightRecorder`
splits the difference the way avionics do: a bounded in-memory ring of
the most recent protocol/transport/gateway events is maintained at all
times (O(1) append, a few hundred bytes per event, zero cost when no
recorder is attached), and only when something goes wrong — a health
alert fires, an operator asks — is the ring dumped as a JSONL artefact.

The recorder is fed from the existing :class:`~repro.obs.hooks.
Instrumentation` hook sites via :class:`~repro.obs.recording.
RecordingInstrumentation` (``flight=`` argument or the ``flight``
attribute): no new call sites in the protocol/transport/gateway layers,
just a second destination for events that already flow.  Event kinds are
catalogued in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, Optional

from repro.util.clocks import Clock

DEFAULT_CAPACITY = 2048


class FlightRecorder:
    """Bounded ring buffer of recent middleware events.

    Events are plain dicts stamped with a monotonically increasing
    ``seq`` and a timestamp ``t`` (the supplied protocol clock so sim
    runs dump virtual times; wall clock otherwise).  The deque bound
    makes append O(1) and memory use constant however long the node
    runs.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: "Optional[Clock]" = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._clock = clock
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else time.time()

    def bind_clock(self, clock: "Optional[Clock]") -> None:
        """Adopt *clock* for event timestamps, unless one is already set.

        A recorder is often built before the community that owns the
        clock (``RecordingInstrumentation(flight=...)`` in the CLI);
        binding late keeps every event on one timeline — mixing the
        ``time.time()`` fallback with a virtual clock would interleave
        ~1.7e9 wall values among small simulated times in dumps.
        """
        if self._clock is None and clock is not None:
            self._clock = clock

    # ------------------------------------------------------------------
    # write side (hook-site hot path)
    # ------------------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Append one event; evicts the oldest when the ring is full."""
        fields["kind"] = kind
        fields["t"] = self._now()
        with self._lock:
            self._seq += 1
            fields["seq"] = self._seq
            self._ring.append(fields)

    # ------------------------------------------------------------------
    # read side (alerts, dumps, endpoint)
    # ------------------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len(events())``)."""
        return self._seq

    def events(self) -> "list[dict]":
        """The retained events, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._ring)

    def dump_lines(self) -> "list[str]":
        """The retained events as JSONL lines (no trailing newlines)."""
        return [json.dumps(event, sort_keys=True, default=str)
                for event in self.events()]

    def dump(self, target: "str | IO[str]") -> int:
        """Write the ring to *target* (path or file); returns event count."""
        lines = self.dump_lines()
        if hasattr(target, "write"):
            for line in lines:
                target.write(line + "\n")
        else:
            with open(target, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
        return len(lines)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
