"""Telemetry exporter: Prometheus text format + JSON snapshot over HTTP.

One tiny stdlib :mod:`http.server` endpoint per node.  Routes:

``/metrics``
    The registry in Prometheus text exposition format (version 0.0.4):
    counters as ``counter``, gauges as ``gauge`` (plus a ``_high_water``
    companion), histograms as ``summary`` with quantile labels and
    ``_sum``/``_count`` series.  Includes ``repro_node_health`` when a
    monitor is attached.
``/metrics.json``
    The raw registry snapshot plus the monitor's health status — the
    machine-readable twin that `repro top` and the C14 bench consume.
``/health``
    Tiny probe body; responds 503 when the node is ``unhealthy`` so the
    endpoint slots straight under a load-balancer health check.
``/flight``
    The flight-recorder ring as JSONL (404 when no recorder attached).

Reads are snapshot-consistent: every request takes one
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` and renders from the
copy, never iterating live instruments.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_HEALTH_CODE = {"healthy": 0, "degraded": 1, "unhealthy": 2}


def _metric_name(name: str) -> str:
    """Registry name → Prometheus series name (``repro_`` prefixed)."""
    sanitised = _NAME_RE.sub("_", name)
    if not sanitised.startswith("repro_"):
        sanitised = "repro_" + sanitised
    return sanitised


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: dict, health: "Optional[dict]" = None) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    *snapshot* is the dict from ``MetricsRegistry.snapshot()``; *health*
    an optional ``HealthMonitor.status()`` dict contributing the
    ``repro_node_health`` gauge (0 healthy / 1 degraded / 2 unhealthy)
    and per-rule firing flags.
    """
    lines: "list[str]" = []

    for name, value in snapshot.get("counters", {}).items():
        series = _metric_name(name) + "_total"
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_fmt(value)}")

    for name, entry in snapshot.get("gauges", {}).items():
        series = _metric_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_fmt(entry.get('value', 0.0))}")
        lines.append(f"# TYPE {series}_high_water gauge")
        lines.append(
            f"{series}_high_water {_fmt(entry.get('high_water', 0.0))}")

    for name, summary in snapshot.get("histograms", {}).items():
        series = _metric_name(name)
        lines.append(f"# TYPE {series} summary")
        for key in ("p50", "p95", "p99"):
            quantile = "0." + key[1:]
            lines.append(
                f"{series}{{quantile=\"{quantile}\"}} "
                f"{_fmt(summary.get(key, 0.0))}")
        lines.append(f"{series}_sum {_fmt(summary.get('sum', 0.0))}")
        lines.append(f"{series}_count {_fmt(summary.get('count', 0))}")

    if health is not None:
        state = health.get("health", "healthy")
        lines.append("# TYPE repro_node_health gauge")
        lines.append(f"repro_node_health {_HEALTH_CODE.get(state, 0)}")
        firing = set(health.get("firing", []))
        if firing:
            lines.append("# TYPE repro_health_rule_firing gauge")
            for rule in sorted(firing):
                label = _NAME_RE.sub("_", rule)
                lines.append(
                    f"repro_health_rule_firing{{rule=\"{label}\"}} 1")

    return "\n".join(lines) + "\n"


class TelemetryServer:
    """Per-node HTTP endpoint serving the live registry.

    Binds ``127.0.0.1`` on an ephemeral port by default; :attr:`url`
    gives the base address once started.  The server owns a daemon
    thread and must be :meth:`stop`-ped (or the process exited) to free
    the socket.
    """

    def __init__(self, registry: MetricsRegistry,
                 monitor=None, flight=None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self.monitor = monitor
        self.flight = flight
        self._host = host
        self._port = port
        self._httpd: "Optional[ThreadingHTTPServer]" = None
        self._thread: "Optional[threading.Thread]" = None

    # -- payload builders (also used by tests without a socket) ---------

    def metrics_text(self) -> str:
        status = self.monitor.status() if self.monitor is not None else None
        return render_prometheus(self.registry.snapshot(), status)

    def metrics_json(self) -> dict:
        payload = {"metrics": self.registry.snapshot()}
        if self.monitor is not None:
            payload["health"] = self.monitor.status()
        if self.flight is not None:
            payload["flight"] = {"recorded": self.flight.recorded,
                                 "capacity": self.flight.capacity}
        return payload

    # -- lifecycle ------------------------------------------------------

    @property
    def url(self) -> str:
        if self._httpd is None:
            raise RuntimeError("telemetry server not started")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("telemetry server not started")
        return self._httpd.server_address[1]

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Persistent connections (every reply carries Content-Length
            # already): a scraper polling on an interval reuses one
            # connection and one handler thread instead of paying socket
            # setup and a thread spawn per poll.
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # silence stderr chatter
                pass

            def _reply(self, code: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 (stdlib naming)
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = server.metrics_text().encode("utf-8")
                        self._reply(200, body,
                                    "text/plain; version=0.0.4")
                    elif path == "/metrics.json":
                        body = json.dumps(
                            server.metrics_json(), sort_keys=True,
                        ).encode("utf-8")
                        self._reply(200, body, "application/json")
                    elif path == "/health":
                        state = (server.monitor.health
                                 if server.monitor is not None
                                 else "healthy")
                        code = 503 if state == "unhealthy" else 200
                        body = json.dumps({"health": state}).encode("utf-8")
                        self._reply(code, body, "application/json")
                    elif path == "/flight":
                        if server.flight is None:
                            self._reply(404, b"no flight recorder\n",
                                        "text/plain")
                        else:
                            lines = server.flight.dump_lines()
                            body = ("\n".join(lines) + "\n").encode("utf-8")
                            self._reply(200, body, "application/x-ndjson")
                    else:
                        self._reply(404, b"not found\n", "text/plain")
                except (BrokenPipeError, ConnectionResetError):
                    pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-exporter", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
