"""Order processing (section 5.2, Figure 7).

A customer and a supplier share the state of an order under *asymmetric*
validation rules: "The customer is allowed to add items and the quantity
required to an order but is not allowed to price the items.  The supplier
can price items but cannot amend the order in any other way."

The alternative four-party instantiation (approver + dispatcher) from the
end of section 5.2 is also provided: the approver sanctions ordered items
and the dispatcher commits to delivery terms.

Order state::

    {
      "items": {name: {"quantity": int, "price": int|None,
                        "approved": bool}},
      "delivery": {"terms": str, "committed": bool} | None,
    }
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.errors import RuleViolation
from repro.protocol.validation import Decision

ROLE_CUSTOMER = "customer"
ROLE_SUPPLIER = "supplier"
ROLE_APPROVER = "approver"
ROLE_DISPATCHER = "dispatcher"

ALL_ROLES = (ROLE_CUSTOMER, ROLE_SUPPLIER, ROLE_APPROVER, ROLE_DISPATCHER)


def empty_order() -> dict:
    return {"items": {}, "delivery": None}


#: Update-mode operations understood by :meth:`OrderObject.merge_update`.
ORDER_OPS = ("add_item", "change_quantity", "price_item", "approve_item",
             "commit_delivery")


def apply_order_op(state: dict, update: Any) -> dict:
    """Pure ``state after op`` for one order operation dict.

    Shared by :meth:`OrderObject.merge_update` on every replica, so it
    must be deterministic; bad operations raise :class:`RuleViolation`
    which the coordination engine turns into a veto diagnostic.
    """
    if not isinstance(update, dict) or update.get("op") not in ORDER_OPS:
        raise RuleViolation(f"unknown order operation: {update!r}")
    merged = {
        "items": {name: dict(item)
                  for name, item in (state.get("items") or {}).items()},
        "delivery": (dict(state["delivery"])
                     if state.get("delivery") else None),
    }
    op = update["op"]
    if op == "commit_delivery":
        merged["delivery"] = {"terms": update.get("terms"), "committed": True}
        return merged
    name = update.get("name")
    if op == "add_item":
        merged["items"][name] = {
            "quantity": update.get("quantity"), "price": None,
            "approved": False,
        }
        return merged
    if name not in merged["items"]:
        raise RuleViolation(f"order has no item {name!r}")
    if op == "change_quantity":
        merged["items"][name]["quantity"] = update.get("quantity")
    elif op == "price_item":
        merged["items"][name]["price"] = update.get("price")
    elif op == "approve_item":
        merged["items"][name]["approved"] = True
    return merged


def _normalise_item(item: Any) -> dict:
    if not isinstance(item, dict):
        raise RuleViolation("order items must be dicts")
    return {
        "quantity": item.get("quantity"),
        "price": item.get("price"),
        "approved": bool(item.get("approved", False)),
    }


def diff_orders(current: dict, proposed: dict) -> "list[str]":
    """Describe every field-level change between two orders.

    Each change is a string tag the role rules match against:
    ``add:<name>``, ``remove:<name>``, ``quantity:<name>``,
    ``price:<name>``, ``approve:<name>``, ``delivery``.
    """
    changes: "list[str]" = []
    old_items = current.get("items", {}) or {}
    new_items = proposed.get("items", {}) or {}
    for name in new_items:
        if name not in old_items:
            changes.append(f"add:{name}")
            new = _normalise_item(new_items[name])
            if new["price"] is not None:
                changes.append(f"price:{name}")
            if new["approved"]:
                changes.append(f"approve:{name}")
            continue
        old = _normalise_item(old_items[name])
        new = _normalise_item(new_items[name])
        if old["quantity"] != new["quantity"]:
            changes.append(f"quantity:{name}")
        if old["price"] != new["price"]:
            changes.append(f"price:{name}")
        if old["approved"] != new["approved"]:
            changes.append(f"approve:{name}")
    for name in old_items:
        if name not in new_items:
            changes.append(f"remove:{name}")
    if (current.get("delivery") or None) != (proposed.get("delivery") or None):
        changes.append("delivery")
    return changes


def _allowed(role: str, change: str) -> bool:
    kind = change.split(":", 1)[0]
    if role == ROLE_CUSTOMER:
        return kind in ("add", "remove", "quantity")
    if role == ROLE_SUPPLIER:
        return kind == "price"
    if role == ROLE_APPROVER:
        return kind == "approve"
    if role == ROLE_DISPATCHER:
        return kind == "delivery"
    return False


class OrderObject(B2BObject):
    """The shared order with role-based asymmetric validation.

    *roles* maps organisation ids to roles, e.g.
    ``{"Customer": "customer", "Supplier": "supplier"}``.  A change is
    valid iff every field-level change it contains is permitted for the
    proposer's role — so the supplier simultaneously pricing an item
    (valid alone) and changing its quantity (invalid) is rejected as a
    whole, exactly as in Figure 7.
    """

    def __init__(self, roles: "dict[str, str]",
                 state: "dict | None" = None) -> None:
        super().__init__()
        for org, role in roles.items():
            if role not in ALL_ROLES:
                raise RuleViolation(f"unknown role {role!r} for {org!r}")
        self.roles = dict(roles)
        self._state = state if state is not None else empty_order()

    def get_state(self) -> dict:
        return {
            "items": {name: dict(item)
                      for name, item in self._state["items"].items()},
            "delivery": (dict(self._state["delivery"])
                         if self._state.get("delivery") else None),
        }

    def apply_state(self, state: Any) -> None:
        self._state = {
            "items": {name: dict(item)
                      for name, item in state.get("items", {}).items()},
            "delivery": (dict(state["delivery"])
                         if state.get("delivery") else None),
        }

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        role = self.roles.get(proposer)
        if role is None:
            return Decision.reject(f"{proposer} has no role on this order")
        try:
            changes = diff_orders(current or empty_order(), proposed or {})
        except RuleViolation as exc:
            return Decision.reject(str(exc))
        violations = [change for change in changes
                      if not _allowed(role, change)]
        if violations:
            return Decision.reject(
                *[f"{role} may not make change {change!r}" for change in violations]
            )
        for name, item in (proposed or {}).get("items", {}).items():
            normalised = _normalise_item(item)
            quantity = normalised["quantity"]
            if not isinstance(quantity, int) or quantity <= 0:
                return Decision.reject(f"item {name!r} needs a positive quantity")
            price = normalised["price"]
            if price is not None and (not isinstance(price, int) or price < 0):
                return Decision.reject(f"item {name!r} has an invalid price")
        return Decision.accept()

    def merge_update(self, state: Any, update: Any) -> Any:
        return apply_order_op(state or empty_order(), update)

    # -- local accessors --------------------------------------------------

    def items(self) -> dict:
        return {name: dict(item) for name, item in self._state["items"].items()}

    def item(self, name: str) -> "Optional[dict]":
        item = self._state["items"].get(name)
        return dict(item) if item else None


class OrderClient:
    """Role-specific operations over a shared order controller."""

    def __init__(self, controller: B2BObjectController) -> None:
        self.controller = controller
        self.order: OrderObject = controller.b2b_object  # type: ignore[assignment]

    def _mutate(self, mutate) -> Any:
        controller = self.controller
        controller.enter()
        controller.overwrite()
        try:
            state = self.order.get_state()
            mutate(state)
            self.order.apply_state(state)
        except Exception:
            # Unwind the scope as a read so no state change is proposed.
            controller._access = None
            controller.leave()
            raise
        return controller.leave()

    # customer ------------------------------------------------------------

    def add_item(self, name: str, quantity: int):
        """Customer: order *quantity* of *name* (unpriced)."""
        def mutate(state: dict) -> None:
            state["items"][name] = {
                "quantity": quantity, "price": None, "approved": False,
            }
        return self._mutate(mutate)

    def change_quantity(self, name: str, quantity: int):
        def mutate(state: dict) -> None:
            state["items"][name]["quantity"] = quantity
        return self._mutate(mutate)

    # supplier --------------------------------------------------------------

    def price_item(self, name: str, price: int):
        """Supplier: price one item (and change nothing else)."""
        def mutate(state: dict) -> None:
            state["items"][name]["price"] = price
        return self._mutate(mutate)

    def price_and_change_quantity(self, name: str, price: int, quantity: int):
        """The Figure 7 invalid combination: price (valid) + quantity
        change (invalid for a supplier) in one update."""
        def mutate(state: dict) -> None:
            state["items"][name]["price"] = price
            state["items"][name]["quantity"] = quantity
        return self._mutate(mutate)

    # approver / dispatcher -------------------------------------------------

    def approve_item(self, name: str):
        def mutate(state: dict) -> None:
            state["items"][name]["approved"] = True
        return self._mutate(mutate)

    def commit_delivery(self, terms: str):
        def mutate(state: dict) -> None:
            state["delivery"] = {"terms": terms, "committed": True}
        return self._mutate(mutate)

    # pipelined (batched) submission -----------------------------------------

    def submit(self, op: dict):
        """Queue one order operation through the proposal pipeline.

        Returns a :class:`~repro.protocol.pipeline.PipelineTicket`;
        queued operations are coalesced into batched coordination runs
        and benign busy vetoes are retried automatically.
        """
        controller = self.controller
        return controller.node.submit_update(controller.object_name, op)

    def submit_add_item(self, name: str, quantity: int):
        return self.submit({"op": "add_item", "name": name,
                            "quantity": quantity})

    def submit_change_quantity(self, name: str, quantity: int):
        return self.submit({"op": "change_quantity", "name": name,
                            "quantity": quantity})

    def submit_price_item(self, name: str, price: int):
        return self.submit({"op": "price_item", "name": name, "price": price})

    def submit_approve_item(self, name: str):
        return self.submit({"op": "approve_item", "name": name})

    def submit_commit_delivery(self, terms: str):
        return self.submit({"op": "commit_delivery", "terms": terms})

    def wait(self, ticket, timeout: "float | None" = None) -> bool:
        """Block until a submitted operation settles; True iff agreed."""
        self.controller.node.wait_for_pipeline(ticket, timeout)
        return ticket.valid

    # gateway (admission-controlled client entry point) -----------------------

    def gateway_client(self, client_id: "str | None" = None,
                       **gateway_options: Any) -> "GatewayOrderClient":
        """Open an admission-controlled client onto this order.

        The returned client routes operations through the node's
        :class:`~repro.gateway.gateway.Gateway` — rate limited, load
        leveled, idempotent and circuit-protected.  *gateway_options*
        configure the gateway on first use (ignored once it exists).
        """
        gateway = self.controller.node.gateway(**gateway_options)
        return GatewayOrderClient(gateway.session(client_id),
                                  self.controller.object_name)


class GatewayOrderClient:
    """Order operations submitted through the client gateway.

    Every operation returns a
    :class:`~repro.gateway.gateway.GatewayTicket` and accepts an
    optional ``key=`` idempotency key; re-submitting with the same key
    (see :meth:`retry`) never double-applies the operation.
    """

    def __init__(self, session: Any, object_name: str) -> None:
        self.session = session
        self.object_name = object_name

    @property
    def client_id(self) -> str:
        return self.session.client_id

    def submit(self, op: dict, key: "str | None" = None):
        return self.session.submit(self.object_name, op, key=key)

    def add_item(self, name: str, quantity: int, key: "str | None" = None):
        return self.submit({"op": "add_item", "name": name,
                            "quantity": quantity}, key=key)

    def change_quantity(self, name: str, quantity: int,
                        key: "str | None" = None):
        return self.submit({"op": "change_quantity", "name": name,
                            "quantity": quantity}, key=key)

    def price_item(self, name: str, price: int, key: "str | None" = None):
        return self.submit({"op": "price_item", "name": name,
                            "price": price}, key=key)

    def approve_item(self, name: str, key: "str | None" = None):
        return self.submit({"op": "approve_item", "name": name}, key=key)

    def commit_delivery(self, terms: str, key: "str | None" = None):
        return self.submit({"op": "commit_delivery", "terms": terms}, key=key)

    def retry(self, ticket):
        """Safely re-submit after a timeout/reconnect (same key)."""
        return self.session.retry(ticket)

    def wait(self, ticket, timeout: "float | None" = None) -> bool:
        """Block until a gateway ticket settles; True iff agreed."""
        self.session.wait(ticket, timeout)
        return ticket.valid
