"""Tic-Tac-Toe (section 5.1, Figures 5 and 6).

"An object that implements the B2BObject interface represents the state
of the game and encapsulates the rules.  Servers representing each player
share the object and coordinate the object state."  The rules are
symmetric and turn-taking: a player claims a vacant square with their own
mark only, on their own turn, and cannot overwrite claimed squares.

The state is ``{"board": [9 x "" | "X" | "O"], "next": "X" | "O",
"winner": "" | "X" | "O" | "draw"}``.  A proposed state is valid iff it
is a *legal successor* of the current state for the proposing player —
attempting anything else (e.g. Cross pre-emptively marking a square with
a zero, as in Figure 5) is vetoed by the opponent's replica and the
cheater forfeits credibility, with evidence.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.errors import RuleViolation
from repro.protocol.validation import Decision

CROSS = "X"
NOUGHT = "O"
EMPTY = ""
DRAW = "draw"

_LINES = [
    (0, 1, 2), (3, 4, 5), (6, 7, 8),  # rows
    (0, 3, 6), (1, 4, 7), (2, 5, 8),  # columns
    (0, 4, 8), (2, 4, 6),  # diagonals
]


def initial_board() -> dict:
    """A fresh game; Cross traditionally moves first."""
    return {"board": [EMPTY] * 9, "next": CROSS, "winner": EMPTY}


def winner_of(board: "list[str]") -> str:
    """Compute the game outcome for a board: X, O, draw, or '' (open)."""
    for a, b, c in _LINES:
        if board[a] != EMPTY and board[a] == board[b] == board[c]:
            return board[a]
    if all(cell != EMPTY for cell in board):
        return DRAW
    return EMPTY


def legal_successor(current: dict, proposed: dict) -> "tuple[bool, str]":
    """Check that *proposed* follows from *current* by one legal move.

    Returns ``(ok, diagnostic)``; the move's mark must be the
    to-move player's, exactly one previously vacant square changes, and
    the turn/winner bookkeeping must be updated correctly.
    """
    if current.get("winner"):
        return False, "the game is already over"
    old = current.get("board")
    new = proposed.get("board")
    if (not isinstance(old, list) or not isinstance(new, list)
            or len(old) != 9 or len(new) != 9):
        return False, "malformed board"
    changes = [i for i in range(9) if old[i] != new[i]]
    if len(changes) != 1:
        return False, f"exactly one square must change (changed: {changes})"
    cell = changes[0]
    if old[cell] != EMPTY:
        return False, f"square {cell} is already claimed"
    mark = new[cell]
    mover = current.get("next")
    if mark != mover:
        return False, f"it is {mover}'s turn and only {mover} marks may be placed"
    expected_winner = winner_of(new)
    if proposed.get("winner", EMPTY) != expected_winner:
        return False, "winner field is inconsistent with the board"
    expected_next = NOUGHT if mover == CROSS else CROSS
    if proposed.get("next") != expected_next:
        return False, "turn must pass to the opponent"
    return True, ""


class TicTacToeObject(B2BObject):
    """The shared game object: state + encoded rules.

    *players* maps organisation ids to marks, e.g.
    ``{"Cross": "X", "Nought": "O"}``.  A proposer that is a player may
    only place its own mark; organisations not in the map (a TTP
    relaying already-validated moves, Figure 6) may propose any legal
    successor.
    """

    def __init__(self, players: "dict[str, str] | None" = None,
                 state: "dict | None" = None) -> None:
        super().__init__()
        self.players = dict(players or {})
        self._state = dict(state) if state is not None else initial_board()

    def get_state(self) -> dict:
        return {
            "board": list(self._state["board"]),
            "next": self._state["next"],
            "winner": self._state["winner"],
        }

    def apply_state(self, state: Any) -> None:
        self._state = {
            "board": list(state["board"]),
            "next": state["next"],
            "winner": state["winner"],
        }

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        ok, diagnostic = legal_successor(current, proposed)
        if not ok:
            return Decision.reject(diagnostic)
        mark = self.players.get(proposer)
        if mark is not None:
            # The mover's mark is the one new square; it must be theirs.
            changed = [i for i in range(9)
                       if current["board"][i] != proposed["board"][i]]
            if proposed["board"][changed[0]] != mark:
                return Decision.reject(
                    f"{proposer} plays {mark} and may not place "
                    f"{proposed['board'][changed[0]]}"
                )
        return Decision.accept()

    # -- local accessors --------------------------------------------------

    @property
    def board(self) -> "list[str]":
        return list(self._state["board"])

    @property
    def next_player(self) -> str:
        return self._state["next"]

    @property
    def winner(self) -> str:
        return self._state["winner"]


class TicTacToePlayer:
    """A player's client: the "Save" (move) and "Load" (view) operations."""

    def __init__(self, controller: B2BObjectController, mark: str) -> None:
        self.controller = controller
        self.mark = mark
        self.game: TicTacToeObject = controller.b2b_object  # type: ignore[assignment]

    def save_move(self, cell: int, mark: "Optional[str]" = None):
        """Propose claiming *cell* (0-8).  *mark* defaults to the player's
        own; passing another mark reproduces the Figure 5 cheat attempt."""
        mark = mark if mark is not None else self.mark
        if not 0 <= cell <= 8:
            raise RuleViolation(f"cell must be 0..8, got {cell}")
        controller = self.controller
        controller.enter()
        controller.overwrite()
        board = self.game.board
        board[cell] = mark
        mover = self.game.next_player
        self.game.apply_state({
            "board": board,
            "next": NOUGHT if mover == CROSS else CROSS,
            "winner": winner_of(board),
        })
        return controller.leave()

    def load_board(self) -> "list[str]":
        """Read the current (agreed) board."""
        self.controller.enter()
        self.controller.examine()
        board = self.game.board
        self.controller.leave()
        return board


FIGURE5_MOVES = [
    # (player-mark, cell, mark-placed): the exact Figure 5 sequence.
    (CROSS, 4, CROSS),    # Cross claims middle row, centre square
    (NOUGHT, 0, NOUGHT),  # Nought claims top row, left square
    (CROSS, 5, CROSS),    # Cross claims middle row, right square
    (CROSS, 7, NOUGHT),   # Cross attempts to mark bottom centre with a zero
]
