"""Shared whiteboard.

Section 5.1 notes that "turn-taking access to shared state is
characteristic of other applications such as shared white boards".  This
object generalises the Tic-Tac-Toe pattern to N organisations: strokes
are append-only and only the organisation holding the turn may draw,
after which the turn rotates.

State::

    {"strokes": [{"author": org, "points": [[x, y], ...], "colour": str}],
     "turn": org, "order": [org, ...]}
"""

from __future__ import annotations

from typing import Any

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.errors import RuleViolation
from repro.protocol.validation import Decision


def new_board(order: "list[str]") -> dict:
    if not order:
        raise RuleViolation("a whiteboard needs at least one participant")
    return {"strokes": [], "turn": order[0], "order": list(order)}


def next_turn(order: "list[str]", current: str) -> str:
    index = order.index(current)
    return order[(index + 1) % len(order)]


class WhiteboardObject(B2BObject):
    """Append-only, turn-rotating shared drawing surface."""

    def __init__(self, order: "list[str]",
                 state: "dict | None" = None) -> None:
        super().__init__()
        self._state = dict(state) if state is not None else new_board(order)

    def get_state(self) -> dict:
        return {
            "strokes": [dict(stroke) for stroke in self._state["strokes"]],
            "turn": self._state["turn"],
            "order": list(self._state["order"]),
        }

    def apply_state(self, state: Any) -> None:
        self._state = {
            "strokes": [dict(stroke) for stroke in state["strokes"]],
            "turn": state["turn"],
            "order": list(state["order"]),
        }

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        current = current or {}
        proposed = proposed or {}
        if proposed.get("order") != current.get("order"):
            return Decision.reject("the participant rotation is immutable")
        if current.get("turn") != proposer:
            return Decision.reject(
                f"it is {current.get('turn')}'s turn, not {proposer}'s"
            )
        old = current.get("strokes", [])
        new = proposed.get("strokes", [])
        if len(new) != len(old) + 1 or new[:len(old)] != old:
            return Decision.reject("strokes are append-only, one per turn")
        stroke = new[-1]
        if stroke.get("author") != proposer:
            return Decision.reject("strokes must be signed by their author")
        points = stroke.get("points")
        if not isinstance(points, list) or not points:
            return Decision.reject("a stroke needs at least one point")
        expected = next_turn(current["order"], current["turn"])
        if proposed.get("turn") != expected:
            return Decision.reject(f"turn must pass to {expected}")
        return Decision.accept()

    @property
    def strokes(self) -> "list[dict]":
        return [dict(stroke) for stroke in self._state["strokes"]]

    @property
    def turn(self) -> str:
        return self._state["turn"]


class WhiteboardClient:
    """One organisation's drawing operations."""

    def __init__(self, controller: B2BObjectController) -> None:
        self.controller = controller
        self.board: WhiteboardObject = controller.b2b_object  # type: ignore[assignment]

    def draw(self, points: "list[list[int]]", colour: str = "black"):
        controller = self.controller
        author = controller.node.party_id
        controller.enter()
        controller.overwrite()
        state = self.board.get_state()
        state["strokes"].append(
            {"author": author, "points": points, "colour": colour}
        )
        state["turn"] = next_turn(state["order"], state["turn"])
        self.board.apply_state(state)
        return controller.leave()
