"""Dispersed operational support (section 2, scenario 2).

"In the telecommunications industry, Operational Support Systems (OSS)
manage service configuration and fault-handling on the customer's behalf
... the customer needs to be able to tailor their complete service.  This
requires the 'dispersal of OSS' so that the customer controls the aspects
that logically belong to them."

The shared object is a telecom service record with three regions:

* ``provisioning`` — infrastructure facts owned by the **provider**
  (capacity, maintenance windows);
* ``configuration`` — service tailoring owned by the **customer**
  (QoS class within the purchased tier, endpoints, alert contact);
* ``tickets`` — fault handling shared under a state machine: the customer
  opens tickets and confirms closure; the provider acknowledges and
  resolves them.

Every change is validated by both organisations, so the provider can no
longer silently reconfigure the customer's service and the customer
cannot exceed what was purchased — with evidence either way.

State::

    {"provisioning": {"capacity_mbps": int, "maintenance_window": str},
     "configuration": {"qos_class": str, "endpoints": [str],
                        "alert_contact": str},
     "tickets": {id: {"summary": str, "status": str, "opened_by": str}}}
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.errors import RuleViolation
from repro.protocol.validation import Decision

ROLE_PROVIDER = "provider"
ROLE_CUSTOMER = "customer"

QOS_TIERS = ["bronze", "silver", "gold", "platinum"]

TICKET_OPEN = "open"
TICKET_ACKNOWLEDGED = "acknowledged"
TICKET_RESOLVED = "resolved"
TICKET_CLOSED = "closed"

# who may drive which ticket transition
_TICKET_TRANSITIONS = {
    (TICKET_OPEN, TICKET_ACKNOWLEDGED): ROLE_PROVIDER,
    (TICKET_ACKNOWLEDGED, TICKET_RESOLVED): ROLE_PROVIDER,
    (TICKET_RESOLVED, TICKET_CLOSED): ROLE_CUSTOMER,
    (TICKET_RESOLVED, TICKET_OPEN): ROLE_CUSTOMER,  # re-open if not fixed
}


def new_service(capacity_mbps: int = 100, purchased_tier: str = "silver") -> dict:
    if purchased_tier not in QOS_TIERS:
        raise RuleViolation(f"unknown tier {purchased_tier!r}")
    return {
        "provisioning": {
            "capacity_mbps": int(capacity_mbps),
            "maintenance_window": "sun-02:00",
            "purchased_tier": purchased_tier,
        },
        "configuration": {
            "qos_class": "bronze",
            "endpoints": [],
            "alert_contact": "",
        },
        "tickets": {},
    }


def _tier_index(tier: str) -> int:
    try:
        return QOS_TIERS.index(tier)
    except ValueError:
        return -1


def diff_service(current: dict, proposed: dict) -> "list[str]":
    """Field-level change tags, mirroring :func:`repro.apps.orders.diff_orders`."""
    changes: "list[str]" = []
    for field in current.get("provisioning", {}):
        if (current["provisioning"].get(field)
                != proposed.get("provisioning", {}).get(field)):
            changes.append(f"provisioning:{field}")
    for field in current.get("configuration", {}):
        if (current["configuration"].get(field)
                != proposed.get("configuration", {}).get(field)):
            changes.append(f"configuration:{field}")
    old_tickets = current.get("tickets", {})
    new_tickets = proposed.get("tickets", {})
    for ticket_id in new_tickets:
        if ticket_id not in old_tickets:
            changes.append(f"ticket-open:{ticket_id}")
        elif old_tickets[ticket_id] != new_tickets[ticket_id]:
            changes.append(f"ticket-update:{ticket_id}")
    for ticket_id in old_tickets:
        if ticket_id not in new_tickets:
            changes.append(f"ticket-delete:{ticket_id}")
    return changes


class ServiceObject(B2BObject):
    """The dispersed-OSS service record with two-sided validation."""

    def __init__(self, roles: "dict[str, str]",
                 state: "dict | None" = None) -> None:
        super().__init__()
        for org, role in roles.items():
            if role not in (ROLE_PROVIDER, ROLE_CUSTOMER):
                raise RuleViolation(f"unknown role {role!r} for {org!r}")
        self.roles = dict(roles)
        self._state = state if state is not None else new_service()

    def get_state(self) -> dict:
        return {
            "provisioning": dict(self._state["provisioning"]),
            "configuration": {
                "qos_class": self._state["configuration"]["qos_class"],
                "endpoints": list(self._state["configuration"]["endpoints"]),
                "alert_contact": self._state["configuration"]["alert_contact"],
            },
            "tickets": {tid: dict(t)
                        for tid, t in self._state["tickets"].items()},
        }

    def apply_state(self, state: Any) -> None:
        self._state = {
            "provisioning": dict(state["provisioning"]),
            "configuration": dict(state["configuration"]),
            "tickets": {tid: dict(t)
                        for tid, t in state.get("tickets", {}).items()},
        }

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        role = self.roles.get(proposer)
        if role is None:
            return Decision.reject(f"{proposer} has no role on this service")
        current = current or new_service()
        diagnostics: "list[str]" = []
        for change in diff_service(current, proposed or {}):
            kind, _, subject = change.partition(":")
            if kind == "provisioning" and role != ROLE_PROVIDER:
                diagnostics.append(f"{role} may not change provisioning field "
                                   f"{subject!r}")
            elif kind == "configuration" and role != ROLE_CUSTOMER:
                diagnostics.append(f"{role} may not tailor configuration field "
                                   f"{subject!r}")
            elif kind == "ticket-delete":
                diagnostics.append("fault tickets are never deleted")
            elif kind == "ticket-open":
                ticket = proposed["tickets"][subject]
                if role != ROLE_CUSTOMER:
                    diagnostics.append("only the customer opens fault tickets")
                elif ticket.get("status") != TICKET_OPEN:
                    diagnostics.append("new tickets must start open")
                elif ticket.get("opened_by") != proposer:
                    diagnostics.append("ticket must record its opener")
            elif kind == "ticket-update":
                diagnostics.extend(self._check_ticket_transition(
                    current["tickets"][subject], proposed["tickets"][subject],
                    role,
                ))
        if not diagnostics:
            diagnostics.extend(self._check_configuration_bounds(proposed))
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    @staticmethod
    def _check_ticket_transition(old: dict, new: dict,
                                 role: str) -> "list[str]":
        if old.get("summary") != new.get("summary") \
                or old.get("opened_by") != new.get("opened_by"):
            return ["only a ticket's status may change"]
        transition = (old.get("status"), new.get("status"))
        allowed_role = _TICKET_TRANSITIONS.get(transition)
        if allowed_role is None:
            return [f"illegal ticket transition {transition[0]} -> {transition[1]}"]
        if allowed_role != role:
            return [f"only the {allowed_role} may move a ticket "
                    f"{transition[0]} -> {transition[1]}"]
        return []

    @staticmethod
    def _check_configuration_bounds(proposed: dict) -> "list[str]":
        configuration = (proposed or {}).get("configuration", {})
        provisioning = (proposed or {}).get("provisioning", {})
        qos = configuration.get("qos_class", "bronze")
        purchased = provisioning.get("purchased_tier", "bronze")
        if _tier_index(qos) < 0:
            return [f"unknown QoS class {qos!r}"]
        if _tier_index(qos) > _tier_index(purchased):
            return [f"QoS class {qos!r} exceeds the purchased tier "
                    f"{purchased!r}"]
        endpoints = configuration.get("endpoints", [])
        if not isinstance(endpoints, list) or len(endpoints) > 16:
            return ["at most 16 service endpoints"]
        return []

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def ticket(self, ticket_id: str) -> "Optional[dict]":
        ticket = self._state["tickets"].get(ticket_id)
        return dict(ticket) if ticket else None

    @property
    def configuration(self) -> dict:
        return dict(self._state["configuration"])

    @property
    def provisioning(self) -> dict:
        return dict(self._state["provisioning"])


class ServiceClient:
    """Role-specific operations over a shared service record."""

    def __init__(self, controller: B2BObjectController) -> None:
        self.controller = controller
        self.service: ServiceObject = controller.b2b_object  # type: ignore[assignment]

    def _mutate(self, mutate) -> Any:
        controller = self.controller
        controller.enter()
        controller.overwrite()
        try:
            state = self.service.get_state()
            mutate(state)
            self.service.apply_state(state)
        except Exception:
            # Unwind the scope as a read so no state change is proposed.
            controller._access = None
            controller.leave()
            raise
        return controller.leave()

    # customer --------------------------------------------------------

    def set_qos_class(self, qos_class: str):
        return self._mutate(
            lambda state: state["configuration"].update(qos_class=qos_class)
        )

    def set_endpoints(self, endpoints: "list[str]"):
        return self._mutate(
            lambda state: state["configuration"].update(endpoints=list(endpoints))
        )

    def set_alert_contact(self, contact: str):
        return self._mutate(
            lambda state: state["configuration"].update(alert_contact=contact)
        )

    def open_ticket(self, ticket_id: str, summary: str):
        owner = self.controller.node.party_id

        def mutate(state: dict) -> None:
            if ticket_id in state["tickets"]:
                raise RuleViolation(f"ticket {ticket_id!r} already exists")
            state["tickets"][ticket_id] = {
                "summary": summary, "status": TICKET_OPEN, "opened_by": owner,
            }
        return self._mutate(mutate)

    def close_ticket(self, ticket_id: str):
        return self._set_ticket_status(ticket_id, TICKET_CLOSED)

    def reopen_ticket(self, ticket_id: str):
        return self._set_ticket_status(ticket_id, TICKET_OPEN)

    # provider ----------------------------------------------------------

    def set_capacity(self, capacity_mbps: int):
        return self._mutate(
            lambda state: state["provisioning"].update(
                capacity_mbps=int(capacity_mbps))
        )

    def set_maintenance_window(self, window: str):
        return self._mutate(
            lambda state: state["provisioning"].update(maintenance_window=window)
        )

    def acknowledge_ticket(self, ticket_id: str):
        return self._set_ticket_status(ticket_id, TICKET_ACKNOWLEDGED)

    def resolve_ticket(self, ticket_id: str):
        return self._set_ticket_status(ticket_id, TICKET_RESOLVED)

    def _set_ticket_status(self, ticket_id: str, status: str):
        def mutate(state: dict) -> None:
            if ticket_id not in state["tickets"]:
                raise RuleViolation(f"no ticket {ticket_id!r}")
            state["tickets"][ticket_id]["status"] = status
        return self._mutate(mutate)
