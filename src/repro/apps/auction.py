"""Distributed auction service (section 2, scenario 3).

"Autonomous, geographically dispersed auction houses wish to collaborate
to deliver a trusted, distributed auction service to their clients ...
The clients act upon the state of an auction through servers that are
controlled by the auction houses.  These servers share and update auction
state.  The clients expect the service to guarantee the same chance of a
successful outcome irrespective of which individual server is used."

The auction object encodes symmetric rules every house enforces on every
other house: bids must strictly exceed the current highest (and meet the
reserve), no bids after close, and the recorded winner must match the
bid history.  Because every state change is unanimously validated and
non-repudiably logged, no house can favour its own clients undetected.

Auction state::

    {"item": str, "reserve": int, "open": bool,
     "highest": {"bidder": str, "amount": int, "house": str} | None,
     "bids": int, "winner": {"bidder": str, "amount": int} | None}
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.errors import RuleViolation
from repro.protocol.validation import Decision


def new_auction(item: str, reserve: int = 0) -> dict:
    return {
        "item": item,
        "reserve": int(reserve),
        "open": True,
        "highest": None,
        "bids": 0,
        "winner": None,
    }


def validate_transition(current: dict, proposed: dict) -> "tuple[bool, str]":
    """Symmetric auction rules applied by every house to every change."""
    if proposed.get("item") != current.get("item") \
            or proposed.get("reserve") != current.get("reserve"):
        return False, "item and reserve are immutable"
    if not current.get("open"):
        return False, "the auction is closed"
    if proposed.get("open"):
        # A bid: exactly one more bid, strictly higher, reserve met.
        if proposed.get("bids") != current.get("bids", 0) + 1:
            return False, "a change to an open auction must add exactly one bid"
        highest = proposed.get("highest")
        if not isinstance(highest, dict):
            return False, "bid missing highest record"
        amount = highest.get("amount")
        if not isinstance(amount, int) or amount < current.get("reserve", 0):
            return False, "bid does not meet the reserve"
        previous = current.get("highest")
        if previous is not None and amount <= previous.get("amount", 0):
            return False, (
                f"bid {amount} does not exceed current highest "
                f"{previous.get('amount')}"
            )
        if proposed.get("winner") is not None:
            return False, "an open auction has no winner"
        return True, ""
    # A close: bid history unchanged, winner consistent with highest.
    if proposed.get("bids") != current.get("bids", 0) \
            or proposed.get("highest") != current.get("highest"):
        return False, "closing must not alter the bid history"
    highest = current.get("highest")
    expected_winner = (
        {"bidder": highest["bidder"], "amount": highest["amount"]}
        if highest is not None else None
    )
    if proposed.get("winner") != expected_winner:
        return False, "winner must be the highest bidder at close"
    return True, ""


#: Update-mode operations understood by :meth:`AuctionObject.merge_update`.
AUCTION_OPS = ("bid", "close")


def apply_auction_op(state: dict, update: Any) -> dict:
    """Pure ``state after op`` for one auction operation dict.

    Deterministic on every replica; bad operations raise
    :class:`RuleViolation`, which becomes a veto diagnostic.  Rule
    checking stays in :func:`validate_transition` — this only computes
    the transition, so per-step batch validation sees each intermediate
    state (a batch of bids must each out-bid the one before it).
    """
    if not isinstance(update, dict) or update.get("op") not in AUCTION_OPS:
        raise RuleViolation(f"unknown auction operation: {update!r}")
    merged = dict(state)
    if update["op"] == "bid":
        merged["highest"] = {"bidder": update.get("bidder"),
                             "amount": update.get("amount"),
                             "house": update.get("house")}
        merged["bids"] = merged.get("bids", 0) + 1
        return merged
    merged["open"] = False
    highest = merged.get("highest")
    merged["winner"] = (
        {"bidder": highest["bidder"], "amount": highest["amount"]}
        if highest else None
    )
    return merged


class AuctionObject(B2BObject):
    """The shared auction state with house-symmetric validation."""

    def __init__(self, state: "dict | None" = None,
                 item: str = "lot-1", reserve: int = 0) -> None:
        super().__init__()
        self._state = dict(state) if state is not None else new_auction(item, reserve)

    def get_state(self) -> dict:
        state = dict(self._state)
        if state.get("highest") is not None:
            state["highest"] = dict(state["highest"])
        if state.get("winner") is not None:
            state["winner"] = dict(state["winner"])
        return state

    def apply_state(self, state: Any) -> None:
        self._state = dict(state)

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        ok, diagnostic = validate_transition(current or {}, proposed or {})
        if not ok:
            return Decision.reject(diagnostic)
        highest = (proposed or {}).get("highest")
        if (proposed or {}).get("open") and isinstance(highest, dict):
            if highest.get("house") != proposer:
                return Decision.reject(
                    "a house may only submit bids placed through itself"
                )
        return Decision.accept()

    def merge_update(self, state: Any, update: Any) -> Any:
        return apply_auction_op(state or {}, update)

    # -- local accessors --------------------------------------------------

    @property
    def highest(self) -> "Optional[dict]":
        highest = self._state.get("highest")
        return dict(highest) if highest else None

    @property
    def is_open(self) -> bool:
        return bool(self._state.get("open"))

    @property
    def winner(self) -> "Optional[dict]":
        winner = self._state.get("winner")
        return dict(winner) if winner else None


class AuctionHouse:
    """One house's server-side operations on the shared auction."""

    def __init__(self, controller: B2BObjectController) -> None:
        self.controller = controller
        self.auction: AuctionObject = controller.b2b_object  # type: ignore[assignment]

    @property
    def house_id(self) -> str:
        return self.controller.node.party_id

    def place_bid(self, bidder: str, amount: int):
        """Submit a client's bid for multi-house validation."""
        if not isinstance(amount, int) or amount <= 0:
            raise RuleViolation("bid amount must be a positive integer")
        controller = self.controller
        controller.enter()
        controller.overwrite()
        state = self.auction.get_state()
        state["highest"] = {"bidder": bidder, "amount": amount,
                            "house": self.house_id}
        state["bids"] = state.get("bids", 0) + 1
        self.auction.apply_state(state)
        return controller.leave()

    def close_auction(self):
        """Close the auction; the highest bidder wins."""
        controller = self.controller
        controller.enter()
        controller.overwrite()
        state = self.auction.get_state()
        state["open"] = False
        highest = state.get("highest")
        state["winner"] = (
            {"bidder": highest["bidder"], "amount": highest["amount"]}
            if highest else None
        )
        self.auction.apply_state(state)
        return controller.leave()

    # pipelined (batched) submission -----------------------------------------

    def submit_bid(self, bidder: str, amount: int):
        """Queue a client's bid through the proposal pipeline.

        Returns a :class:`~repro.protocol.pipeline.PipelineTicket`.
        Concurrent bids from several houses contend for the same
        auction; the pipeline coalesces this house's queued bids into
        batched runs and retries benign busy vetoes.  A losing (too low)
        bid settles with ``valid=False`` and the rejection diagnostics.
        """
        if not isinstance(amount, int) or amount <= 0:
            raise RuleViolation("bid amount must be a positive integer")
        controller = self.controller
        return controller.node.submit_update(
            controller.object_name,
            {"op": "bid", "bidder": bidder, "amount": amount,
             "house": self.house_id},
        )

    def submit_close(self):
        """Queue the auction close through the proposal pipeline."""
        controller = self.controller
        return controller.node.submit_update(controller.object_name,
                                             {"op": "close"})

    def wait(self, ticket, timeout: "float | None" = None) -> bool:
        """Block until a submitted operation settles; True iff agreed."""
        self.controller.node.wait_for_pipeline(ticket, timeout)
        return ticket.valid

    # gateway (admission-controlled client entry point) -----------------------

    def gateway_client(self, bidder: str,
                       **gateway_options: Any) -> "GatewayBidder":
        """Open an admission-controlled bidder session at this house.

        This is the "clients act upon the state of an auction through
        servers" boundary of scenario 3: bids enter through the house's
        :class:`~repro.gateway.gateway.Gateway`, so a bid-sniping flood
        from one client is rate limited and a retried bid (same
        idempotency key) is never placed twice.  *gateway_options*
        configure the gateway on first use (ignored once it exists).
        """
        gateway = self.controller.node.gateway(**gateway_options)
        return GatewayBidder(gateway.session(bidder), self)


class GatewayBidder:
    """One client's bidding session through an auction house's gateway."""

    def __init__(self, session: Any, house: AuctionHouse) -> None:
        self.session = session
        self.house = house

    @property
    def bidder(self) -> str:
        return self.session.client_id

    def bid(self, amount: int, key: "str | None" = None):
        """Place a bid; returns a gateway ticket (idempotent under *key*)."""
        if not isinstance(amount, int) or amount <= 0:
            raise RuleViolation("bid amount must be a positive integer")
        return self.session.submit(
            self.house.controller.object_name,
            {"op": "bid", "bidder": self.bidder, "amount": amount,
             "house": self.house.house_id},
            key=key,
        )

    def retry(self, ticket):
        """Safely re-submit a bid after a timeout/reconnect (same key)."""
        return self.session.retry(ticket)

    def wait(self, ticket, timeout: "float | None" = None) -> bool:
        """Block until a gateway ticket settles; True iff agreed."""
        self.session.wait(ticket, timeout)
        return ticket.valid
