"""Canonical encoding for signable protocol data.

Signatures are computed over a *canonical* byte representation so that two
parties independently serialising the same logical value always obtain the
same bytes.  The canonical form is JSON with sorted keys, no insignificant
whitespace, and ``bytes`` values encoded as tagged base64 strings.  This
mirrors the role DER/XER plays in classical non-repudiation systems while
remaining dependency-free and human-debuggable.
"""

from __future__ import annotations

import base64
import json
from typing import Any

_BYTES_TAG = "__b64__"

# JSON cannot represent bytes, tuples or non-string keys; canonicalisation
# maps bytes to a tagged wrapper and tuples to lists.  Non-string dict keys
# are rejected outright: silently coercing them would let two parties
# disagree about what was signed.


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"canonical encoding requires str keys, got {key!r}")
            if key == _BYTES_TAG:
                raise ValueError(f"dict key {_BYTES_TAG!r} is reserved")
            encoded[key] = _encode_value(item)
        return encoded
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # Floats round-trip exactly through repr in Python 3, but different
        # producers may still format them differently; protocol data should
        # use ints or strings.  Accept floats but normalise via repr.
        return {"__float__": repr(value)}
    raise TypeError(f"value of type {type(value).__name__} is not canonically encodable")


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return base64.b64decode(value[_BYTES_TAG])
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {key: _decode_value(item) for key, item in value.items()}
    return value


def canonical_bytes(value: Any) -> bytes:
    """Serialise *value* to its unique canonical byte string."""
    encoded = _encode_value(value)
    text = json.dumps(encoded, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
    return text.encode("ascii")


def from_canonical_bytes(data: bytes) -> Any:
    """Inverse of :func:`canonical_bytes`."""
    return _decode_value(json.loads(data.decode("ascii")))


def b64(data: bytes) -> str:
    """Compact base64 helper used in logs and debug output."""
    return base64.b64encode(data).decode("ascii")


def unb64(text: str) -> bytes:
    """Inverse of :func:`b64`."""
    return base64.b64decode(text.encode("ascii"))
