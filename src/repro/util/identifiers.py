"""Identifier helpers shared across the middleware."""

from __future__ import annotations

import itertools
import re
import threading

_PARTY_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def validate_party_id(party_id: str) -> str:
    """Validate and return a party identifier.

    Party identifiers name organisations in protocol messages, evidence
    records and certificates, so they must be stable, printable and free of
    separator characters used by the wire encodings.
    """
    if not isinstance(party_id, str):
        raise TypeError(f"party id must be str, got {type(party_id).__name__}")
    if not _PARTY_ID_RE.match(party_id):
        raise ValueError(f"invalid party id: {party_id!r}")
    return party_id


class SequenceAllocator:
    """Thread-safe monotonically increasing integer allocator."""

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)


def qualified_name(org: str, name: str) -> str:
    """Return the conventional ``org/name`` qualified object alias."""
    validate_party_id(org)
    if "/" in name:
        raise ValueError(f"object name may not contain '/': {name!r}")
    return f"{org}/{name}"
