"""Shared utilities: canonical encoding, clocks and identifiers."""

from repro.util.clocks import Clock, OffsetClock, SystemClock, VirtualClock
from repro.util.encoding import b64, canonical_bytes, from_canonical_bytes, unb64
from repro.util.identifiers import SequenceAllocator, qualified_name, validate_party_id

__all__ = [
    "Clock",
    "OffsetClock",
    "SystemClock",
    "VirtualClock",
    "b64",
    "canonical_bytes",
    "from_canonical_bytes",
    "unb64",
    "SequenceAllocator",
    "qualified_name",
    "validate_party_id",
]
