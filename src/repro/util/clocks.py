"""Clock abstractions.

The protocol engines never read wall-clock time directly; they take a
:class:`Clock` so that the deterministic simulation runtime can drive them
on virtual time while the TCP runtime uses the system clock.  Time-stamping
services are built on the same abstraction (section 4.2 of the paper
requires all signed evidence to be time-stamped).
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Abstract monotonic-ish clock returning seconds as a float."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time (``time.time``).

    Use only where real-world timestamps are the point — evidence
    records and time-stamp tokens.  Interval measurement (timeouts,
    retransmission pacing, latency) must use :class:`MonotonicClock`:
    wall clocks step under NTP corrections, which would stall or storm
    any timer arithmetic built on them.
    """

    def now(self) -> float:
        return time.time()


class MonotonicClock(Clock):
    """Steadily increasing time (``time.monotonic``), immune to wall steps.

    The zero point is arbitrary, so readings are only meaningful as
    differences — exactly what retransmission timers and latency
    measurements need.
    """

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """A manually advanced clock for deterministic simulation.

    Thread-safe so that the TCP runtime's helper threads may also consult a
    virtual clock in hybrid test setups.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* seconds and return the new time."""
        if delta < 0:
            raise ValueError("virtual time cannot move backwards")
        with self._lock:
            self._now += delta
            return self._now

    def advance_to(self, instant: float) -> float:
        """Move time forward to *instant* (no-op if already past it)."""
        with self._lock:
            if instant > self._now:
                self._now = float(instant)
            return self._now


class OffsetClock(Clock):
    """A clock skewed from another clock by a fixed offset.

    Used in tests to model per-organisation clock skew and to check that
    evidence time-stamps come from the *trusted* service, not local clocks.
    """

    def __init__(self, base: Clock, offset: float) -> None:
        self._base = base
        self._offset = float(offset)

    def now(self) -> float:
        return self._base.now() + self._offset
