"""Idempotency keys: exactly-once submission across client retries.

A client that times out or reconnects cannot know whether its update was
applied.  Submitting again with the *same* idempotency key is always
safe: while the original request is still pending the gateway returns
the very same ticket (no second submission reaches the pipeline), and
once it has settled the gateway replays the original outcome from a
bounded cache — the update is applied exactly once and every retry
observes the first outcome.

The completed-outcome cache is a sliding LRU window, the same discipline
the coordination engine applies to its ``_seen_proposal_keys`` replay
set: old enough keys are forgotten, so a retry arriving *after* eviction
is treated as a fresh request.  Size the window for the longest retry
horizon the deployment allows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

Key = "tuple[str, str]"


class IdempotencyCache:
    """Pending and completed gateway tickets keyed by (client, key)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("idempotency capacity must be at least 1")
        self.capacity = capacity
        #: In-flight requests; bounded naturally by queue + inflight.
        self._pending: "dict[tuple[str, str], Any]" = {}
        #: Settled outcomes, oldest evicted beyond *capacity*.
        self._completed: "OrderedDict[tuple[str, str], Any]" = OrderedDict()

    def lookup(self, client_id: str, key: str) -> "Optional[Any]":
        """The ticket already held for this (client, key), if any."""
        entry = self._pending.get((client_id, key))
        if entry is not None:
            return entry
        entry = self._completed.get((client_id, key))
        if entry is not None:
            self._completed.move_to_end((client_id, key))
        return entry

    def note_pending(self, client_id: str, key: str, ticket: Any) -> None:
        self._pending[(client_id, key)] = ticket

    def complete(self, client_id: str, key: str, ticket: Any) -> None:
        """Move a settled request into the bounded replay window."""
        self._pending.pop((client_id, key), None)
        self._completed[(client_id, key)] = ticket
        self._completed.move_to_end((client_id, key))
        while len(self._completed) > self.capacity:
            self._completed.popitem(last=False)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def completed_count(self) -> int:
        return len(self._completed)
