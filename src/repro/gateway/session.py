"""Client sessions: idempotency-key management over the gateway.

A :class:`ClientSession` is the client-side handle the apps hand out.
It remembers the client's identity and stamps every submission with an
idempotency key, so "retry after timeout" is a one-liner
(:meth:`retry`) instead of a correctness hazard.

Auto-generated keys are namespaced by a gateway-assigned *session
serial*: two sessions for the same client id never collide, so a client
that reconnects with a fresh session gets fresh auto keys.  To make a
retry span a reconnect, the client must carry the key across — either by
re-using the ticket (:meth:`retry` works from any session) or by passing
the same explicit ``key=`` to :meth:`submit`.  That is the documented
exactly-once contract.
"""

from __future__ import annotations

from typing import Any, Optional


class ClientSession:
    """One client's submission handle onto a :class:`Gateway`."""

    def __init__(self, gateway: Any, client_id: str, serial: int) -> None:
        self.gateway = gateway
        self.client_id = client_id
        self._serial = serial
        self._sequence = 0

    def next_key(self) -> str:
        """A fresh auto idempotency key, unique to this session."""
        self._sequence += 1
        return f"auto/{self._serial}/{self._sequence}"

    def submit(self, object_name: str, update: Any,
               key: "Optional[str]" = None) -> Any:
        """Submit one update; *key* defaults to a fresh auto key.

        Pass an explicit *key* to make the submission retryable across
        reconnects: any later submission with the same (client, key)
        observes this one's outcome instead of applying again.
        """
        if key is None:
            key = self.next_key()
        return self.gateway.submit(self.client_id, object_name, update, key)

    def read(self, object_name: str, read_mode: Any = None) -> Any:
        """Read the object's validated state in an explicit mode.

        ``cached``/``bounded`` reads are served lock-free from the
        gateway node's snapshot cache and never occupy an admission or
        pipeline slot; see :mod:`repro.core.readcache` for the
        consistency contract.
        """
        return self.gateway.read(self.client_id, object_name, read_mode)

    def retry(self, ticket: Any) -> Any:
        """Re-submit a ticket's request under its original key.

        Safe after a timeout or reconnect: if the original settled this
        replays its outcome, if it is still pending this returns the
        original ticket, and only if the gateway has genuinely forgotten
        the key (idempotency window expired) is the update re-admitted.
        """
        return self.gateway.submit(ticket.client_id, ticket.object_name,
                                   ticket.update, ticket.key)

    def wait(self, ticket: Any, timeout: "float | None" = None) -> bool:
        return self.gateway.wait(ticket, timeout)
