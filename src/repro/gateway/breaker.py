"""Per-community circuit breaker over settlement health.

The coordination protocol needs *every* party to respond, so one crashed
or degraded organisation stalls settlement for the whole community.
Clients that keep submitting during such an episode only deepen the
backlog: each admitted update waits out the full busy-retry schedule and
eventually fails (or settles with enormous latency).

:class:`CircuitBreaker` watches the stream of settlement outcomes for
one shared object and fails fast when the community looks unhealthy:

* **closed** — normal operation.  A sliding window of recent outcomes is
  kept; when failures in the window reach ``failure_threshold``, or a
  settlement exceeds ``latency_threshold`` seconds, the breaker opens.
* **open** — every request is rejected immediately with
  :class:`~repro.errors.CircuitOpenError` (and the remaining cool-down
  as ``retry_after``).  After ``reset_timeout`` seconds the breaker
  half-opens.
* **half_open** — up to ``probes`` requests are let through as probes.
  If every probe settles cleanly the breaker closes; any probe failure
  (or over-latency settlement) re-opens it for another cool-down.

The breaker never *blocks* — like everything else in the stack it is a
sans-IO state machine driven by ``allow()`` at admission time and
``record()`` at settlement time, using the node's protocol clock
(virtual time under the simulator).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.util.clocks import Clock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Fail-fast guard for one shared object's settlement path."""

    def __init__(self, clock: Clock,
                 failure_threshold: int = 5,
                 window: int = 20,
                 latency_threshold: "Optional[float]" = None,
                 reset_timeout: float = 5.0,
                 probes: int = 2,
                 on_transition: "Optional[Callable[[str, str], None]]" = None
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if window < failure_threshold:
            raise ValueError("window must hold at least failure_threshold")
        if probes < 1:
            raise ValueError("probes must be at least 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.window = window
        self.latency_threshold = latency_threshold
        self.reset_timeout = reset_timeout
        self.probes = probes
        self.on_transition = on_transition
        self._state = CLOSED
        #: Recent outcomes in the closed window: True = unhealthy.
        self._outcomes: "deque[bool]" = deque(maxlen=window)
        self._opened_at = 0.0
        #: Probe slots handed out / settled during half_open.
        self._probes_inflight = 0
        self._probes_succeeded = 0
        #: (time, old, new) transition log for tests and reports.
        self.transitions: "list[tuple[float, str, str]]" = []

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def retry_after(self) -> float:
        """Remaining cool-down while open (0.0 otherwise)."""
        if self._state != OPEN:
            return 0.0
        remaining = (self._opened_at + self.reset_timeout
                     - self.clock.now())
        return max(0.0, remaining)

    # ------------------------------------------------------------------
    # admission path
    # ------------------------------------------------------------------

    def allow(self) -> "tuple[bool, bool]":
        """``(admitted, is_probe)`` for one incoming request.

        While half-open, admitted requests are probe-flagged and capped
        at ``probes`` in flight; their outcomes (reported back through
        :meth:`record` with ``probe=True``) decide whether the breaker
        closes or re-opens.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True, False
        if self._state == HALF_OPEN:
            if self._probes_inflight < self.probes:
                self._probes_inflight += 1
                return True, True
            return False, False
        return False, False

    def release_probe(self) -> None:
        """Return an unused probe slot (admission failed later on)."""
        if self._probes_inflight > 0:
            self._probes_inflight -= 1

    # ------------------------------------------------------------------
    # settlement path
    # ------------------------------------------------------------------

    def record(self, ok: bool, seconds: float, probe: bool = False) -> None:
        """Feed one settlement outcome (``seconds`` = admission→settle).

        Non-probe outcomes are ignored outside the closed state: they
        are stragglers from the backlog that built up before the breaker
        opened, and must not vote on recovery — only fresh probes can.
        """
        unhealthy = (not ok) or (
            self.latency_threshold is not None
            and seconds > self.latency_threshold)
        self._maybe_half_open()
        if probe and self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            if unhealthy:
                self._trip()
            else:
                self._probes_succeeded += 1
                if self._probes_succeeded >= self.probes:
                    self._transition(CLOSED)
                    self._outcomes.clear()
            return
        if self._state != CLOSED:
            return
        self._outcomes.append(unhealthy)
        failures = sum(1 for bad in self._outcomes if bad)
        if failures >= self.failure_threshold:
            self._trip()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _trip(self) -> None:
        self._opened_at = self.clock.now()
        self._transition(OPEN)
        self._outcomes.clear()

    def _maybe_half_open(self) -> None:
        if (self._state == OPEN
                and self.clock.now() >= self._opened_at + self.reset_timeout):
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if new_state == HALF_OPEN:
            self._probes_inflight = 0
            self._probes_succeeded = 0
        self.transitions.append((self.clock.now(), old_state, new_state))
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)
