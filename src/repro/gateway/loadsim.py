"""Closed-loop client load simulation against a gateway.

Drives a large simulated client population (10^5+ is routine) through a
:class:`~repro.gateway.gateway.Gateway` over the deterministic virtual-
time simulator.  Clients are event-driven state machines, not threads:
each schedules its next action on the :class:`SimNetwork`, submits
through its own :class:`~repro.gateway.session.ClientSession`, and backs
off by the gateway's advertised ``retry_after`` when rejected — the
closed loop every real client library implements.

The shared object is a :class:`CounterObject` whose merge is *additive*
(``applied`` counts every applied update), so a duplicate application —
the bug idempotency keys exist to prevent — is visible in the final
agreed state rather than silently overwritten as it would be under the
default dict merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.community import Community
from repro.core.object import B2BObject
from repro.crypto.prng import DeterministicRandomSource
from repro.errors import GatewayError

DEFAULT_OBJECT = "shared-counter"


class CounterObject(B2BObject):
    """Shared counter with an additive merge (duplicates are visible)."""

    def __init__(self) -> None:
        super().__init__()
        self._state = {"applied": 0, "total": 0}

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state: Any) -> None:
        self._state = dict(state)

    def merge_update(self, state: Any, update: Any) -> Any:
        amount = int(update.get("n", 1)) if isinstance(update, dict) else 1
        return {
            "applied": state["applied"] + 1,
            "total": state["total"] + amount,
        }


def build_gateway_community(orgs: int = 2, seed: "int | str" = 0,
                            obs: Any = None,
                            object_name: str = DEFAULT_OBJECT,
                            **gateway_options: Any
                            ) -> "tuple[Community, Any, str]":
    """A simulated community with a gateway on its first organisation.

    Returns ``(community, gateway, object_name)``; the shared object is
    a :class:`CounterObject` replica at every organisation.
    """
    names = [f"Org{index + 1}" for index in range(orgs)]
    community = Community(names, seed=seed, obs=obs)
    community.found_object(object_name,
                           {name: CounterObject() for name in names})
    gateway = community.node(names[0]).gateway(**gateway_options)
    return community, gateway, object_name


@dataclass
class LoadSimConfig:
    """Shape of one closed-loop load run."""

    clients: int = 1000
    requests_per_client: int = 1
    #: Client start times are spread uniformly over this many seconds.
    arrival_window: float = 1.0
    #: Idle time between a settlement and the client's next request.
    think_time: float = 0.0
    #: The first *hot_clients* clients submit ``hot_factor`` times the
    #: normal request count — the noisy neighbours the rate limiter caps.
    hot_clients: int = 0
    hot_factor: int = 10
    #: A client abandons a request after this many rejected attempts.
    max_retries: int = 50
    #: Virtual-time budget for the whole run.
    timeout: float = 3600.0
    seed: "int | str" = 0


@dataclass
class LoadSimStats:
    """Outcome of one load run (virtual-time figures)."""

    clients: int = 0
    requests: int = 0
    settled_valid: int = 0
    settled_invalid: int = 0
    replayed: int = 0
    retries: "dict[str, int]" = field(default_factory=dict)
    gave_up: int = 0
    elapsed: float = 0.0
    latencies: "list[float]" = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Settled updates per virtual second."""
        return self.settled_valid / self.elapsed if self.elapsed > 0 else 0.0

    def latency_percentiles(self) -> "dict[str, float]":
        ordered = sorted(self.latencies)
        return {f"p{q}": _percentile(ordered, q) for q in (50, 95, 99)}

    def summary(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "settled_valid": self.settled_valid,
            "settled_invalid": self.settled_invalid,
            "replayed": self.replayed,
            "retries": dict(self.retries),
            "gave_up": self.gave_up,
            "elapsed_virtual_s": self.elapsed,
            "updates_per_virtual_s": self.throughput,
            "latency_s": self.latency_percentiles(),
        }


def _percentile(ordered: "list[float]", q: int) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round((q / 100.0) * (len(ordered) - 1))))
    return ordered[index]


class _SimClient:
    """One closed-loop client: submit, wait for settlement, repeat."""

    __slots__ = ("sim", "session", "target", "sent", "attempts", "jitter")

    def __init__(self, sim: "LoadSim", session: Any, target: int,
                 jitter: DeterministicRandomSource) -> None:
        self.sim = sim
        self.session = session
        self.target = target
        self.sent = 0
        self.attempts = 0
        self.jitter = jitter

    def step(self) -> None:
        if self.sent >= self.target:
            self.sim.client_finished()
            return
        self.attempts = 0
        self.submit(self.session.next_key())

    def submit(self, key: str) -> None:
        update = {"client": self.session.client_id, "n": 1}
        try:
            ticket = self.session.submit(self.sim.object_name, update,
                                         key=key)
        except GatewayError as exc:
            reason = type(exc).__name__
            self.sim.stats.retries[reason] = (
                self.sim.stats.retries.get(reason, 0) + 1)
            self.attempts += 1
            if self.attempts > self.sim.config.max_retries:
                self.sim.stats.gave_up += 1
                self.sent += 1
                self.step()
                return
            delay = exc.retry_after + 0.001 * (1 + self.jitter.random_below(64))
            self.sim.schedule(delay, lambda: self.submit(key))
            return
        self.sim.stats.requests += 1
        if ticket.replayed:
            self.sim.stats.replayed += 1
        ticket.on_done(self.settled)

    def settled(self, ticket: Any) -> None:
        if ticket.valid:
            self.sim.stats.settled_valid += 1
        else:
            self.sim.stats.settled_invalid += 1
        if ticket.latency is not None:
            self.sim.stats.latencies.append(ticket.latency)
        self.sent += 1
        think = self.sim.config.think_time
        if think > 0.0:
            self.sim.schedule(think, self.step)
        else:
            self.step()


class LoadSim:
    """Run a :class:`LoadSimConfig` population against one gateway."""

    def __init__(self, community: Community, gateway: Any,
                 object_name: str = DEFAULT_OBJECT,
                 config: "Optional[LoadSimConfig]" = None) -> None:
        self.community = community
        self.gateway = gateway
        self.object_name = object_name
        self.config = config or LoadSimConfig()
        self.stats = LoadSimStats(clients=self.config.clients)
        self._finished = 0
        self._rng = DeterministicRandomSource(
            f"loadsim:{self.config.seed}")

    def schedule(self, delay: float, callback: Any) -> None:
        self.community.runtime.network.schedule(max(delay, 1e-9), callback)

    def client_finished(self) -> None:
        self._finished += 1

    def run(self) -> LoadSimStats:
        config = self.config
        started = self.community.clock.now()
        window_ticks = max(1, int(config.arrival_window * 1_000_000))
        for index in range(config.clients):
            session = self.gateway.session(f"c{index}")
            target = config.requests_per_client
            if index < config.hot_clients:
                target *= config.hot_factor
            client = _SimClient(self, session, target,
                                self._rng.fork(f"client:{index}"))
            offset = (self._rng.random_below(window_ticks) / 1_000_000.0)
            self.schedule(offset, client.step)
        finished = self.community.runtime.wait_until(
            lambda: self._finished >= config.clients, config.timeout)
        if not finished:
            raise TimeoutError(
                f"load sim did not settle within {config.timeout} virtual "
                f"seconds ({self._finished}/{config.clients} clients done)")
        self.stats.elapsed = self.community.clock.now() - started
        return self.stats


def run_load_sim(community: Community, gateway: Any,
                 object_name: str = DEFAULT_OBJECT,
                 config: "Optional[LoadSimConfig]" = None) -> LoadSimStats:
    """Convenience wrapper: build a :class:`LoadSim` and run it."""
    return LoadSim(community, gateway, object_name, config).run()


# ---------------------------------------------------------------------------
# crash injection with live telemetry
# ---------------------------------------------------------------------------


@dataclass
class CrashInjection:
    """One party crash/recovery injected into a load run (virtual time)."""

    org: str
    crash_at: float = 1.0
    recover_at: float = 4.0

    def validate(self) -> None:
        if self.recover_at <= self.crash_at:
            raise ValueError("recover_at must follow crash_at")


#: Breaker options that make a crash visible to the breaker: stalled
#: runs settle late after recovery, and with a latency threshold those
#: late settlements trip the circuit (the breaker only records at
#: settlement, so a pure stall alone never trips it).
CRASH_BREAKER_OPTIONS = {
    "latency_threshold": 1.0,
    "failure_threshold": 3,
    "reset_timeout": 1.0,
    "probes": 1,
}


def run_crash_scenario(community: Community, gateway: Any,
                       object_name: str = DEFAULT_OBJECT,
                       config: "Optional[LoadSimConfig]" = None,
                       crash: "Optional[CrashInjection]" = None,
                       watchdog_interval: float = 0.5,
                       dump_path: "Optional[str]" = None,
                       settle_after: float = 2.0
                       ) -> "tuple[LoadSimStats, Any]":
    """A load run with an injected party crash, watched live.

    Arms the gateway node's live telemetry plane (breaker watchdog +
    flight recorder, dumping to *dump_path* when an alert fires),
    schedules ``crash.org`` to crash and recover on virtual time, runs
    the closed-loop load, then lets *settle_after* more virtual seconds
    elapse so the watchdog observes the return to health.  Returns
    ``(stats, live)`` — ``live.monitor`` holds the alerts and health
    transitions, ``live.flight`` the recorded events.

    The node must carry a recording instrumentation, and the gateway
    should be built with :data:`CRASH_BREAKER_OPTIONS` (or an equivalent
    ``latency_threshold``) for the crash to trip the breaker.
    """
    from repro.obs.live import DEGRADED, CounterDeltaRule

    if crash is None:
        raise ValueError("run_crash_scenario needs a CrashInjection")
    crash.validate()
    node = gateway.node
    # Watch the breaker alone: the scenario's health story is the trip
    # and the recovery, not the (expected) stall noise while the victim
    # is down.
    rules = [CounterDeltaRule(
        "breaker_flap", "gateway.breaker.transitions", 0.0,
        severity=DEGRADED, message="circuit breaker changed state")]
    live = node.live(rules=rules, interval=watchdog_interval,
                     dump_path=dump_path)
    live.start()
    network = community.runtime.network
    victim = community.node(crash.org)
    network.schedule(crash.crash_at, victim.crash)
    network.schedule(crash.recover_at, victim.recover)
    try:
        stats = run_load_sim(community, gateway, object_name, config)
        # Let the watchdog see quiet intervals after the last breaker
        # movement so aggregate health returns to healthy.
        community.runtime.settle(settle_after)
    finally:
        live.stop()
    return stats, live
