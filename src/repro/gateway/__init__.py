"""repro.gateway — the front-door client gateway.

Admission control between a large, bursty client population and one
organisation's coordination middleware: per-client token-bucket rate
limiting, a bounded load-leveling admission queue, idempotency keys for
exactly-once retries, and a per-object circuit breaker that fails fast
while the community is unhealthy.  :mod:`repro.gateway.loadsim` drives
10^5+ simulated clients through all of it over virtual time.
"""

from repro.gateway.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.gateway.gateway import Gateway, GatewayTicket
from repro.gateway.idempotency import IdempotencyCache
from repro.gateway.loadsim import (
    CRASH_BREAKER_OPTIONS,
    CounterObject,
    CrashInjection,
    LoadSim,
    LoadSimConfig,
    LoadSimStats,
    build_gateway_community,
    run_crash_scenario,
    run_load_sim,
)
from repro.gateway.queue import AdmissionQueue
from repro.gateway.ratelimit import RateLimiter, TokenBucket
from repro.gateway.session import ClientSession

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CLOSED",
    "ClientSession",
    "CounterObject",
    "Gateway",
    "GatewayTicket",
    "HALF_OPEN",
    "IdempotencyCache",
    "LoadSim",
    "LoadSimConfig",
    "LoadSimStats",
    "OPEN",
    "RateLimiter",
    "TokenBucket",
    "CRASH_BREAKER_OPTIONS",
    "CrashInjection",
    "build_gateway_community",
    "run_crash_scenario",
    "run_load_sim",
]
