"""Bounded FIFO admission queue (queue-based load leveling).

The gateway never pushes client traffic straight into a proposal
pipeline: requests first land in an :class:`AdmissionQueue`, from which
the gateway dispatches at most ``max_inflight`` entries into the
pipeline at a time.  The queue absorbs bursts; when it is full the
gateway *sheds* the request with an explicit
:class:`~repro.errors.GatewayOverloadedError` instead of buffering
without bound — the caller is told to back off, which is the point of
load leveling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional


class AdmissionQueue:
    """Bounded FIFO of admitted-but-not-yet-dispatched gateway entries."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._entries: "deque[Any]" = deque()

    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def offer(self, entry: Any) -> bool:
        """Append *entry*; False (shed) when the queue is full."""
        if self.full:
            return False
        self._entries.append(entry)
        return True

    def take(self) -> "Optional[Any]":
        """Pop the oldest entry, or None when empty."""
        return self._entries.popleft() if self._entries else None

    def push_back(self, entry: Any) -> None:
        """Return *entry* to the head (a dispatch hit pipeline backpressure).

        Re-queued entries were already admitted, so this may transiently
        exceed ``capacity``; only fresh :meth:`offer` calls are bounded.
        """
        self._entries.appendleft(entry)

    def __len__(self) -> int:
        return len(self._entries)
