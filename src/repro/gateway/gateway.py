"""The front-door gateway: admission control for client traffic.

The middleware's coordination machinery (engines, pipeline, node) deals
in *organisations* — a handful of mutually suspicious parties running a
unanimous protocol.  The population pushing updates at one organisation
is a different animal: many clients, bursty, retry-happy, and unaware of
each other.  :class:`Gateway` is the boundary between the two worlds.
It accepts client submissions and routes them into the node's
:class:`~repro.protocol.pipeline.ProposalPipeline` through four guards:

* **Rate limiting** — a per-client token bucket
  (:mod:`repro.gateway.ratelimit`); a flooding client is answered with
  :class:`~repro.errors.RateLimitedError` and an exact retry delay,
  without starving well-behaved clients.
* **Load leveling** — admitted requests wait in a bounded
  :class:`~repro.gateway.queue.AdmissionQueue` and at most
  ``max_inflight`` occupy the pipeline at once; a full queue *sheds*
  with :class:`~repro.errors.GatewayOverloadedError` rather than
  buffering without bound.
* **Idempotency** — requests carry a per-client idempotency key
  (:mod:`repro.gateway.idempotency`); a retry of a pending request
  joins the original ticket, and a retry of a settled one replays the
  original outcome.  The update is applied exactly once.
* **Circuit breaking** — a per-object
  :class:`~repro.gateway.breaker.CircuitBreaker` watches settlement
  latency and veto rates; when the community is unhealthy the gateway
  fails fast with :class:`~repro.errors.CircuitOpenError` and recovers
  via half-open probe requests.

Threading: the gateway shares the node's re-entrant lock.  Settlement
events arrive from :meth:`OrganisationNode._dispatch_event` with that
lock held, and the gateway's admission path takes it too — sharing one
lock makes the lock order trivially consistent (no gateway-then-node vs
node-then-gateway deadlock) and keeps admission atomic with respect to
settlement.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import (
    CircuitOpenError,
    GatewayOverloadedError,
    PipelineSaturatedError,
    RateLimitedError,
)
from repro.gateway.breaker import CircuitBreaker
from repro.gateway.idempotency import IdempotencyCache
from repro.gateway.queue import AdmissionQueue
from repro.gateway.ratelimit import RateLimiter
from repro.gateway.session import ClientSession
from repro.protocol.events import Event, RunCompleted


@dataclass
class GatewayTicket:
    """Handle on one client submission, resolved when it settles."""

    client_id: str
    object_name: str
    key: str
    update: Any
    submitted_at: float
    done: bool = False
    valid: "Optional[bool]" = None
    diagnostics: "list[str]" = field(default_factory=list)
    run_id: "Optional[str]" = None
    #: Admission→settlement seconds on the protocol clock.
    latency: "Optional[float]" = None
    #: True when this handle was served from the idempotency cache.
    replayed: bool = False
    _probe: bool = field(default=False, repr=False)
    _pipeline_ticket: Any = field(default=None, repr=False)
    _callbacks: "list[Callable[[GatewayTicket], None]]" = field(
        default_factory=list, repr=False)
    _signal: threading.Event = field(default_factory=threading.Event,
                                     repr=False)

    def on_done(self, callback: "Callable[[GatewayTicket], None]") -> None:
        """Run *callback(ticket)* at settlement (immediately if settled)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def resolve(self, valid: bool, diagnostics: "list[str]",
                run_id: "Optional[str]", latency: float) -> None:
        self.valid = valid
        self.diagnostics = list(diagnostics)
        self.run_id = run_id
        self.latency = latency
        self.done = True
        self._signal.set()
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def wait_signal(self, timeout: "float | None") -> bool:
        """Real-time wait used by the threaded runtime."""
        return self._signal.wait(timeout)

    def replay_view(self) -> "GatewayTicket":
        """A settled copy marked ``replayed`` (original outcome intact)."""
        view = GatewayTicket(
            client_id=self.client_id, object_name=self.object_name,
            key=self.key, update=self.update,
            submitted_at=self.submitted_at, replayed=True,
        )
        view.resolve(bool(self.valid), self.diagnostics, self.run_id,
                     self.latency if self.latency is not None else 0.0)
        return view


class _ObjectLane:
    """Per-object admission state: queue, breaker, inflight entries."""

    __slots__ = ("queue", "breaker", "inflight", "draining")

    def __init__(self, queue: AdmissionQueue, breaker: CircuitBreaker) -> None:
        self.queue = queue
        self.breaker = breaker
        self.inflight: "list[GatewayTicket]" = []
        self.draining = False


class _ShardDispatch:
    """Per-shard fan-out state: the lanes routed to one shard.

    Dispatch walks the rotation round-robin so a hot object's backlog
    cannot starve its shard siblings of pipeline slots, and a saturated
    pipeline on one lane never blocks dispatch to the others.  With a
    single lane per shard this degrades to the legacy per-object drain.
    """

    __slots__ = ("rotation", "inflight", "draining")

    def __init__(self) -> None:
        self.rotation: "deque[str]" = deque()
        self.inflight = 0
        self.draining = False


class Gateway:
    """Admission-controlled client entry point for one organisation node."""

    def __init__(self, node: Any,
                 queue_capacity: int = 1024,
                 max_inflight: int = 256,
                 rate: "Optional[float]" = None,
                 burst: float = 16.0,
                 breaker: "Optional[dict]" = None,
                 idempotency_capacity: int = 4096,
                 shed_retry_after: float = 0.05,
                 pipeline_options: "Optional[dict]" = None,
                 shard_inflight: "Optional[int]" = None) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if shard_inflight is not None and shard_inflight < 1:
            raise ValueError("shard_inflight must be at least 1")
        self.node = node
        self.queue_capacity = queue_capacity
        self.max_inflight = max_inflight
        # Optional cap on inflight entries per *shard* (across all its
        # lanes); None keeps the legacy per-object bound only.
        self.shard_inflight = shard_inflight
        self.shed_retry_after = shed_retry_after
        self.breaker_options = dict(breaker or {})
        self.pipeline_options = dict(pipeline_options or {})
        clock = node.ctx.clock
        self.limiter: "Optional[RateLimiter]" = (
            RateLimiter(rate, burst, clock) if rate is not None else None)
        self.idempotency = IdempotencyCache(idempotency_capacity)
        self._lanes: "dict[str, _ObjectLane]" = {}
        self._shard_dispatch: "dict[int, _ShardDispatch]" = {}
        self._lane_shard: "dict[str, int]" = {}
        # Share the node's re-entrant lock (see module docstring).
        self._lock = node._lock
        self._session_serial = 0
        # Local tallies mirroring the obs counters, so callers without
        # instrumentation (the load sim, quick scripts) still get totals.
        self.stats_admitted = 0
        self.stats_reads = 0
        self.stats_replayed = 0
        self.stats_settled_valid = 0
        self.stats_settled_invalid = 0
        self.stats_rejected: "dict[str, int]" = {
            "rate_limited": 0, "overloaded": 0, "circuit_open": 0,
        }
        node.add_listener(self._on_event)

    # ------------------------------------------------------------------
    # client-facing API
    # ------------------------------------------------------------------

    def session(self, client_id: "Optional[str]" = None) -> ClientSession:
        """Open a client session (auto-named when *client_id* is None)."""
        with self._lock:
            self._session_serial += 1
            serial = self._session_serial
        if client_id is None:
            client_id = f"client-{serial}"
        return ClientSession(self, client_id, serial)

    def submit(self, client_id: str, object_name: str, update: Any,
               key: str) -> GatewayTicket:
        """Admit one client update for *object_name*.

        Raises :class:`~repro.errors.RateLimitedError`,
        :class:`~repro.errors.GatewayOverloadedError` or
        :class:`~repro.errors.CircuitOpenError` when a guard rejects;
        each carries ``retry_after`` seconds.  Returns the original
        ticket when *key* repeats a pending request, and a settled
        ``replayed`` view when it repeats a completed one.
        """
        obs = self.node.ctx.obs
        party = self.node.party_id
        with self._lock:
            existing = self.idempotency.lookup(client_id, key)
            if existing is not None:
                self.stats_replayed += 1
                if obs.enabled:
                    obs.gateway_replayed(party, object_name, client_id)
                return existing.replay_view() if existing.done else existing
            lane = self._lane(object_name)
            admitted, probe = lane.breaker.allow()
            if not admitted:
                self._reject(obs, party, object_name, client_id,
                             "circuit_open", lane.breaker.retry_after())
                raise CircuitOpenError(
                    f"circuit for {object_name!r} is "
                    f"{lane.breaker.state}; failing fast",
                    retry_after=lane.breaker.retry_after(),
                )
            if self.limiter is not None:
                ok, retry_after = self.limiter.admit(client_id)
                if not ok:
                    if probe:
                        lane.breaker.release_probe()
                    self._reject(obs, party, object_name, client_id,
                                 "rate_limited", retry_after)
                    raise RateLimitedError(
                        f"client {client_id!r} exceeded its rate limit",
                        retry_after=retry_after,
                    )
            ticket = GatewayTicket(
                client_id=client_id, object_name=object_name, key=key,
                update=update, submitted_at=self.node.ctx.clock.now(),
            )
            ticket._probe = probe
            if not lane.queue.offer(ticket):
                if probe:
                    lane.breaker.release_probe()
                self._reject(obs, party, object_name, client_id,
                             "overloaded", self.shed_retry_after)
                raise GatewayOverloadedError(
                    f"gateway admission queue for {object_name!r} is full "
                    f"({lane.queue.depth} waiting)",
                    retry_after=self.shed_retry_after,
                )
            self.stats_admitted += 1
            if obs.enabled:
                obs.gateway_admitted(party, object_name, client_id)
                obs.gateway_queue_depth(party, object_name, lane.queue.depth)
            self.idempotency.note_pending(client_id, key, ticket)
            self._drain_shard(self._dispatch_for(object_name))
            return ticket

    def read(self, client_id: str, object_name: str,
             read_mode: Any = None) -> Any:
        """Serve one client read from the validated snapshot cache.

        Reads go through the per-client rate limiter but never occupy a
        queue slot, pipeline slot, or breaker budget — a read storm
        cannot displace write admission, and with ``cached``/``bounded``
        modes it never even enters the coordination critical section.
        Returns a :class:`~repro.core.readcache.ReadResult`; raises
        :class:`~repro.errors.RateLimitedError` when the client's token
        bucket is empty.
        """
        obs = self.node.ctx.obs
        party = self.node.party_id
        if self.limiter is not None:
            with self._lock:
                ok, retry_after = self.limiter.admit(client_id)
            if not ok:
                self._reject_read(obs, party, object_name, client_id,
                                  retry_after)
                raise RateLimitedError(
                    f"client {client_id!r} exceeded its rate limit",
                    retry_after=retry_after,
                )
        result = self.node.examine(object_name, read_mode)
        self.stats_reads += 1
        return result

    def _reject_read(self, obs: Any, party: str, object_name: str,
                     client_id: str, retry_after: float) -> None:
        with self._lock:
            self.stats_rejected["rate_limited"] += 1
        if obs.enabled:
            obs.gateway_rejected(party, object_name, client_id,
                                 "rate_limited", retry_after)

    def wait(self, ticket: GatewayTicket,
             timeout: "float | None" = None) -> bool:
        """Block until *ticket* settles (or *timeout* passes)."""
        timeout = (timeout if timeout is not None
                   else self.node.default_timeout)
        return self.node.runtime.wait_until(lambda: ticket.done, timeout)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def breaker(self, object_name: str) -> CircuitBreaker:
        with self._lock:
            return self._lane(object_name).breaker

    def queue_depth(self, object_name: str) -> int:
        with self._lock:
            lane = self._lanes.get(object_name)
            return lane.queue.depth if lane else 0

    def inflight_count(self, object_name: str) -> int:
        with self._lock:
            lane = self._lanes.get(object_name)
            return len(lane.inflight) if lane else 0

    def shard_inflight_count(self, shard_index: int) -> int:
        """Inflight entries across every lane routed to one shard."""
        with self._lock:
            dispatch = self._shard_dispatch.get(shard_index)
            return dispatch.inflight if dispatch else 0

    def stats(self) -> dict:
        """Cumulative admission tallies (also available via repro.obs)."""
        with self._lock:
            return {
                "admitted": self.stats_admitted,
                "reads": self.stats_reads,
                "replayed": self.stats_replayed,
                "settled_valid": self.stats_settled_valid,
                "settled_invalid": self.stats_settled_invalid,
                "rejected": dict(self.stats_rejected),
                "breakers": {name: lane.breaker.state
                             for name, lane in self._lanes.items()},
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _lane(self, object_name: str) -> _ObjectLane:
        lane = self._lanes.get(object_name)
        if lane is None:
            obs = self.node.ctx.obs
            party = self.node.party_id

            def announce(old_state: str, new_state: str) -> None:
                if obs.enabled:
                    obs.breaker_transition(party, object_name,
                                           old_state, new_state)

            lane = _ObjectLane(
                AdmissionQueue(self.queue_capacity),
                CircuitBreaker(self.node.ctx.clock,
                               on_transition=announce,
                               **self.breaker_options),
            )
            self._lanes[object_name] = lane
            index = self.node.shards.shard_for(object_name).index
            self._lane_shard[object_name] = index
            dispatch = self._shard_dispatch.get(index)
            if dispatch is None:
                dispatch = self._shard_dispatch[index] = _ShardDispatch()
            dispatch.rotation.append(object_name)
        return lane

    def _dispatch_for(self, object_name: str) -> _ShardDispatch:
        self._lane(object_name)
        return self._shard_dispatch[self._lane_shard[object_name]]

    def _reject(self, obs: Any, party: str, object_name: str,
                client_id: str, reason: str, retry_after: float) -> None:
        self.stats_rejected[reason] += 1
        if obs.enabled:
            obs.gateway_rejected(party, object_name, client_id, reason,
                                 retry_after)

    def _drain_shard(self, dispatch: _ShardDispatch) -> None:
        """Dispatch queued entries from a shard's lanes, round-robin.

        Called under the shared lock from both admission and settlement;
        the ``draining`` latch stops re-entrant dispatch when the node
        processes pipeline output synchronously.  Each pass over the
        rotation moves at most one entry per lane, so a deep backlog on
        one object interleaves with its shard siblings instead of
        monopolising the pipeline; a lane whose pipeline reports
        saturation is parked for this drain (its entry stays at the
        queue head) without blocking the others.
        """
        if dispatch.draining:
            return
        dispatch.draining = True
        try:
            parked: "set[str]" = set()
            progress = True
            while progress:
                progress = False
                for _ in range(len(dispatch.rotation)):
                    if (self.shard_inflight is not None
                            and dispatch.inflight >= self.shard_inflight):
                        return
                    object_name = dispatch.rotation[0]
                    dispatch.rotation.rotate(-1)
                    lane = self._lanes[object_name]
                    if (object_name in parked
                            or len(lane.queue) == 0
                            or len(lane.inflight) >= self.max_inflight):
                        continue
                    entry = lane.queue.take()
                    if self.pipeline_options:
                        self.node.pipeline(object_name,
                                           **self.pipeline_options)
                    try:
                        pipeline_ticket = self.node.submit_update(
                            object_name, entry.update)
                    except PipelineSaturatedError:
                        # Pipeline backpressure: the entry was admitted,
                        # so keep it at the head and retry on next
                        # settlement; siblings keep draining.
                        lane.queue.push_back(entry)
                        parked.add(object_name)
                        continue
                    entry._pipeline_ticket = pipeline_ticket
                    lane.inflight.append(entry)
                    dispatch.inflight += 1
                    progress = True
        finally:
            dispatch.draining = False

    def _on_event(self, event: Event) -> None:
        """Node listener: finalize settled entries, then refill.

        Runs with the shared lock already held (the node dispatches
        events under it); taking it again is a re-entrant no-op.
        """
        if not (isinstance(event, RunCompleted) and event.kind == "state"):
            return
        with self._lock:
            lane = self._lanes.get(event.object_name)
            if lane is None:
                return
            still_inflight = []
            settled = []
            for entry in lane.inflight:
                ticket = entry._pipeline_ticket
                if ticket is not None and ticket.done:
                    settled.append(entry)
                else:
                    still_inflight.append(entry)
            lane.inflight = still_inflight
            for entry in settled:
                self._finalize(lane, entry)
            if settled:
                dispatch = self._dispatch_for(event.object_name)
                dispatch.inflight = max(0, dispatch.inflight - len(settled))
                self._drain_shard(dispatch)

    def _finalize(self, lane: _ObjectLane, entry: GatewayTicket) -> None:
        pipeline_ticket = entry._pipeline_ticket
        valid = bool(pipeline_ticket.valid)
        latency = self.node.ctx.clock.now() - entry.submitted_at
        lane.breaker.record(valid, latency, probe=entry._probe)
        self.idempotency.complete(entry.client_id, entry.key, entry)
        if valid:
            self.stats_settled_valid += 1
        else:
            self.stats_settled_invalid += 1
        obs = self.node.ctx.obs
        if obs.enabled:
            obs.gateway_settled(self.node.party_id, entry.object_name,
                                valid, latency)
        entry.resolve(valid, pipeline_ticket.diagnostics,
                      pipeline_ticket.run_id, latency)
