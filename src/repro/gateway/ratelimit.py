"""Per-client token-bucket rate limiting.

Each client gets a :class:`TokenBucket` with a configurable *burst*
(bucket capacity) and *rate* (tokens refilled per second, on the node's
protocol clock — virtual time under the simulator, wall time over TCP).
One request costs one token; an empty bucket answers with the refill
delay so the client can retry at exactly the right moment rather than
hammering.

The per-client bucket map is LRU-bounded (``max_clients``), so a
population of millions of one-shot clients cannot grow the gateway's
memory without bound; an evicted client simply starts over with a full
bucket, which errs on the side of admitting.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util.clocks import Clock


class TokenBucket:
    """One client's token bucket (continuous refill, bounded burst)."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0.0:
            raise ValueError("refill rate must be positive")
        if burst < 1.0:
            raise ValueError("burst must be at least 1 token")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._stamp = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; refills first."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until *tokens* will be available (0.0 when they are)."""
        self._refill(now)
        missing = tokens - self._tokens
        return max(0.0, missing / self.rate)


class RateLimiter:
    """LRU-bounded map of per-client token buckets."""

    def __init__(self, rate: float, burst: float, clock: Clock,
                 max_clients: int = 131072) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.max_clients = max_clients
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        now = self.clock.now()
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        return bucket

    def admit(self, client_id: str) -> "tuple[bool, float]":
        """``(admitted, retry_after_seconds)`` for one request."""
        bucket = self.bucket(client_id)
        now = self.clock.now()
        if bucket.try_acquire(now):
            return True, 0.0
        return False, bucket.retry_after(now)

    def __len__(self) -> int:
        return len(self._buckets)
