"""From-scratch RSA key generation and raw operations.

This is the public-key substrate behind :mod:`repro.crypto.signature`.
Key sizes are configurable; tests default to small moduli (fast, still
exercising every code path) while deployments can request 2048-bit keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.numbers import generate_prime, mod_inverse
from repro.crypto.prng import RandomSource, SystemRandomSource
from repro.errors import KeyGenerationError
from repro.obs.hooks import Instrumentation

DEFAULT_PUBLIC_EXPONENT = 65537
DEFAULT_KEY_BITS = 512


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    modulus: int
    exponent: int

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def to_dict(self) -> dict:
        return {"kind": "rsa-public", "n": self.modulus, "e": self.exponent}

    @staticmethod
    def from_dict(data: dict) -> "RsaPublicKey":
        if data.get("kind") != "rsa-public":
            raise ValueError(f"not an RSA public key: {data.get('kind')!r}")
        return RsaPublicKey(modulus=int(data["n"]), exponent=int(data["e"]))


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast signing."""

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int
    # CRT parameters, derived once at construction: signing is the
    # per-message hot path and must not redo two modular reductions and
    # an extended-Euclid inversion per signature.
    crt_dp: int = field(init=False, repr=False, compare=False, default=0)
    crt_dq: int = field(init=False, repr=False, compare=False, default=0)
    crt_q_inv: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "crt_dp",
                           self.private_exponent % (self.prime_p - 1))
        object.__setattr__(self, "crt_dq",
                           self.private_exponent % (self.prime_q - 1))
        object.__setattr__(self, "crt_q_inv",
                           mod_inverse(self.prime_q, self.prime_p))

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.modulus, self.public_exponent)

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def _crt_power(self, base: int) -> int:
        # Chinese-remainder exponentiation: ~4x faster than pow(base, d, n).
        p, q = self.prime_p, self.prime_q
        m1 = pow(base % p, self.crt_dp, p)
        m2 = pow(base % q, self.crt_dq, q)
        h = (self.crt_q_inv * (m1 - m2)) % p
        return m2 + h * q


def generate_keypair(bits: int = DEFAULT_KEY_BITS,
                     rng: "RandomSource | None" = None,
                     public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
                     obs: "Instrumentation | None" = None) -> RsaPrivateKey:
    """Generate an RSA key pair with a modulus of exactly *bits* bits."""
    if bits < 128:
        raise KeyGenerationError(f"modulus of {bits} bits is too small (minimum 128)")
    if bits % 2 != 0:
        raise KeyGenerationError("modulus size must be even")
    if public_exponent % 2 == 0 or public_exponent < 3:
        raise KeyGenerationError("public exponent must be an odd integer >= 3")
    rng = rng or SystemRandomSource()
    half = bits // 2
    started = time.perf_counter() if obs is not None and obs.enabled else 0.0
    for attempt in range(1, 65):
        p = generate_prime(half, rng.random_below)
        q = generate_prime(half, rng.random_below)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = mod_inverse(public_exponent, phi)
        except ValueError:
            continue  # e not coprime with phi; draw new primes
        n = p * q
        if n.bit_length() != bits:
            continue
        if obs is not None and obs.enabled:
            obs.keygen_timing(bits, attempt, time.perf_counter() - started)
        return RsaPrivateKey(
            modulus=n,
            public_exponent=public_exponent,
            private_exponent=d,
            prime_p=p,
            prime_q=q,
        )
    raise KeyGenerationError(f"failed to generate a {bits}-bit key pair")


def rsa_sign_int(key: RsaPrivateKey, message: int) -> int:
    """Raw RSA signing: ``message ** d mod n``."""
    if not 0 <= message < key.modulus:
        raise ValueError("message representative out of range")
    return key._crt_power(message)


def rsa_verify_int(key: RsaPublicKey, signature: int) -> int:
    """Raw RSA verification: recover the message representative."""
    if not 0 <= signature < key.modulus:
        raise ValueError("signature representative out of range")
    return pow(signature, key.exponent, key.modulus)
