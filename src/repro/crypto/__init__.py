"""Cryptographic substrate: hashing, PRNG, RSA signatures, PKI, TSA.

Everything here is implemented from scratch on the standard library, per
the reproduction's no-external-dependency rule.  The primitives match the
assumptions in section 4.2 of the paper: a verifiable/unforgeable
signature scheme, a one-way collision-resistant hash, a secure PRNG, and
a trusted time-stamping service.
"""

from repro.crypto.certificates import Certificate, CertificateAuthority, CertificateStore
from repro.crypto.hashing import (
    DIGEST_SIZE,
    HASH_ALGORITHM,
    constant_time_equal,
    hash_hex,
    hash_members,
    hash_value,
    hmac_digest,
    secure_hash,
)
from repro.crypto.prng import DeterministicRandomSource, RandomSource, SystemRandomSource
from repro.crypto.rsa import (
    DEFAULT_KEY_BITS,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)
from repro.crypto.signature import (
    HmacSigner,
    HmacVerifier,
    KeyPair,
    RsaSigner,
    RsaVerifier,
    Signature,
    Signer,
    Verifier,
    generate_party_keypair,
    verifier_for_public_key,
)
from repro.crypto.timestamp import TimestampService, TimestampToken, verify_timestamp

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateStore",
    "DIGEST_SIZE",
    "HASH_ALGORITHM",
    "constant_time_equal",
    "hash_hex",
    "hash_members",
    "hash_value",
    "hmac_digest",
    "secure_hash",
    "DeterministicRandomSource",
    "RandomSource",
    "SystemRandomSource",
    "DEFAULT_KEY_BITS",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "HmacSigner",
    "HmacVerifier",
    "KeyPair",
    "RsaSigner",
    "RsaVerifier",
    "Signature",
    "Signer",
    "Verifier",
    "generate_party_keypair",
    "verifier_for_public_key",
    "TimestampService",
    "TimestampToken",
    "verify_timestamp",
]
