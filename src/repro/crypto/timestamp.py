"""Trusted time-stamping service.

Section 4.2: "Since a signature is only valid if it can be asserted that
the signing key was not compromised at the time of use, all signed
evidence must be time-stamped. ... a trusted time-stamping service, TS,
will provide the following time-stamp as evidence of its generation at
time t:  TS(H(m), t) = sig_TS(H(m), t)."

The service never sees the message itself, only its hash — matching the
privacy expectations of the organisations using it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import hash_value, secure_hash
from repro.crypto.signature import KeyPair, Signature, Verifier, generate_party_keypair
from repro.errors import TimestampError
from repro.util.clocks import Clock, SystemClock


@dataclass(frozen=True)
class TimestampToken:
    """``sig_TS(H(m), t)`` — proof that ``m`` existed at time ``t``."""

    service: str
    digest: bytes
    time_ms: int
    signature: Signature

    def signed_payload(self) -> dict:
        return {"service": self.service, "digest": self.digest, "time_ms": self.time_ms}

    def to_dict(self) -> dict:
        payload = self.signed_payload()
        payload["signature"] = self.signature.to_dict()
        return payload

    @staticmethod
    def from_dict(data: dict) -> "TimestampToken":
        return TimestampToken(
            service=str(data["service"]),
            digest=bytes(data["digest"]),
            time_ms=int(data["time_ms"]),
            signature=Signature.from_dict(data["signature"]),
        )

    @property
    def time(self) -> float:
        return self.time_ms / 1000.0


class TimestampService:
    """A trusted third-party time-stamping authority."""

    def __init__(self, name: str = "TSA", clock: "Clock | None" = None,
                 key_bits: int = 512, keypair: "KeyPair | None" = None) -> None:
        self.name = name
        self._clock = clock or SystemClock()
        self._keypair = keypair or generate_party_keypair(name, bits=key_bits)
        self._signer = self._keypair.signer()
        self._issued = 0

    @property
    def verifier(self) -> Verifier:
        return self._keypair.verifier()

    @property
    def public_key(self) -> dict:
        """The service's public key, for offline token verification."""
        return self._keypair.public_key.to_dict()

    @property
    def issued_count(self) -> int:
        """Number of tokens issued; used by benchmarks as a cost counter."""
        return self._issued

    def stamp_digest(self, digest: bytes) -> TimestampToken:
        """Issue a token over a precomputed message digest."""
        time_ms = int(self._clock.now() * 1000)
        token = TimestampToken(
            service=self.name,
            digest=digest,
            time_ms=time_ms,
            signature=Signature("pending", self.name, b""),
        )
        signature = self._signer.sign(token.signed_payload())
        self._issued += 1
        return TimestampToken(
            service=self.name, digest=digest, time_ms=time_ms, signature=signature
        )

    def stamp_bytes(self, message: bytes) -> TimestampToken:
        return self.stamp_digest(secure_hash(message))

    def stamp(self, value: Any) -> TimestampToken:
        """Time-stamp any canonically encodable value."""
        return self.stamp_digest(hash_value(value))


def verify_timestamp(token: TimestampToken, value: Any,
                     verifier: Verifier) -> None:
    """Check a token against the value it allegedly stamps.

    Raises :class:`TimestampError` if the digest does not match *value* or
    the service signature is invalid.
    """
    if token.digest != hash_value(value):
        raise TimestampError("time-stamp digest does not match the stamped value")
    if not verifier.verify(token.signed_payload(), token.signature):
        raise TimestampError(f"time-stamp signature by {token.service!r} is invalid")
