"""Secure hash function used throughout the middleware.

The paper's ``H`` is a one-way, collision-resistant hash.  All state
identifiers, group identifiers, evidence links and log chains hash through
this module so the algorithm can be swapped in one place.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Any

from repro.util.encoding import canonical_bytes

HASH_ALGORITHM = "sha256"
DIGEST_SIZE = hashlib.new(HASH_ALGORITHM).digest_size


def secure_hash(data: bytes) -> bytes:
    """Hash raw bytes with the middleware hash function."""
    if not isinstance(data, bytes):
        raise TypeError(f"secure_hash expects bytes, got {type(data).__name__}")
    return hashlib.new(HASH_ALGORITHM, data).digest()


def hash_value(value: Any) -> bytes:
    """Hash any canonically encodable value (``H(x)`` in the paper)."""
    return secure_hash(canonical_bytes(value))


def hash_hex(value: Any) -> str:
    """Hex digest of :func:`hash_value`, for logs and diagnostics."""
    return hash_value(value).hex()


def hash_members(members: "list[str]") -> bytes:
    """``H(P_0 .. P_n)`` over a membership list (section 4.5.2).

    The membership hash is order-sensitive because the paper orders the
    participant set by join recency to determine the sponsor role; two
    parties with different orderings hold genuinely different views.
    """
    return hash_value(["members", list(members)])


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """Keyed MAC used by the symmetric signature scheme variant."""
    return _hmac.new(key, data, HASH_ALGORITHM).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison for authenticators and MACs."""
    return _hmac.compare_digest(a, b)
