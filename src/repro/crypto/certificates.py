"""Certificate management.

Figure 3 of the paper places "certificate management & non-repudiation"
inside the middleware augmentation of each object: it authenticates access
and lets every party verify every other party's signatures.  This module
implements a small X.509-style PKI: a certificate authority signs
``(subject, public-key, validity)`` bindings; a certificate store holds
trusted roots and resolves a verifier for any certified party.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.rsa import RsaPublicKey
from repro.crypto.signature import (
    KeyPair,
    RsaVerifier,
    Signature,
    Verifier,
    generate_party_keypair,
)
from repro.errors import CertificateError
from repro.util.clocks import Clock, SystemClock
from repro.util.identifiers import validate_party_id


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a party identity to a public key."""

    serial: int
    subject: str
    issuer: str
    public_key: dict
    not_before: float
    not_after: float
    signature: Signature

    def signed_payload(self) -> dict:
        """The portion of the certificate covered by the issuer signature."""
        return {
            "serial": self.serial,
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key": self.public_key,
            "not_before": int(self.not_before * 1000),
            "not_after": int(self.not_after * 1000),
        }

    def to_dict(self) -> dict:
        payload = self.signed_payload()
        payload["signature"] = self.signature.to_dict()
        return payload

    @staticmethod
    def from_dict(data: dict) -> "Certificate":
        return Certificate(
            serial=int(data["serial"]),
            subject=str(data["subject"]),
            issuer=str(data["issuer"]),
            public_key=dict(data["public_key"]),
            not_before=int(data["not_before"]) / 1000.0,
            not_after=int(data["not_after"]) / 1000.0,
            signature=Signature.from_dict(data["signature"]),
        )

    def verifier(self) -> Verifier:
        """Verifier for signatures made by the certified subject."""
        return RsaVerifier(RsaPublicKey.from_dict(self.public_key))


class CertificateAuthority:
    """Issues and revokes certificates for a community of organisations."""

    def __init__(self, name: str, key_bits: int = 512,
                 clock: "Clock | None" = None,
                 keypair: "KeyPair | None" = None) -> None:
        validate_party_id(name)
        self.name = name
        self._clock = clock or SystemClock()
        self._keypair = keypair or generate_party_keypair(name, bits=key_bits)
        self._signer = self._keypair.signer()
        self._next_serial = 1
        self._revoked: "set[int]" = set()

    @property
    def verifier(self) -> Verifier:
        return self._keypair.verifier()

    @property
    def public_key(self) -> dict:
        return self._keypair.public_key.to_dict()

    def issue(self, subject: str, public_key: "dict | Any",
              lifetime: float = 365.0 * 86400.0) -> Certificate:
        """Issue a certificate for *subject*'s public key."""
        validate_party_id(subject)
        if hasattr(public_key, "to_dict"):
            public_key = public_key.to_dict()
        # Quantise to milliseconds so certificates survive serialisation
        # round-trips exactly (the wire form carries integer ms).
        now = int(self._clock.now() * 1000) / 1000.0
        lifetime = int(lifetime * 1000) / 1000.0
        serial = self._next_serial
        self._next_serial += 1
        unsigned = Certificate(
            serial=serial,
            subject=subject,
            issuer=self.name,
            public_key=dict(public_key),
            not_before=now,
            not_after=now + lifetime,
            signature=Signature("pending", self.name, b""),
        )
        signature = self._signer.sign(unsigned.signed_payload())
        return Certificate(
            serial=serial,
            subject=subject,
            issuer=self.name,
            public_key=dict(public_key),
            not_before=now,
            not_after=now + lifetime,
            signature=signature,
        )

    def revoke(self, serial: int) -> None:
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def revocation_list(self) -> "set[int]":
        """A snapshot of revoked serials, distributable to stores."""
        return set(self._revoked)


class CertificateStore:
    """Per-party trust store: trusted roots, known certificates, CRLs."""

    def __init__(self, clock: "Clock | None" = None) -> None:
        self._clock = clock or SystemClock()
        self._roots: "dict[str, Verifier]" = {}
        self._certificates: "dict[str, Certificate]" = {}
        self._revoked: "dict[str, set[int]]" = {}

    def trust_authority(self, name: str, verifier: Verifier) -> None:
        """Register *verifier* as the trusted root for issuer *name*."""
        validate_party_id(name)
        self._roots[name] = verifier

    def update_revocations(self, issuer: str, serials: "set[int]") -> None:
        self._revoked.setdefault(issuer, set()).update(serials)

    def add_certificate(self, certificate: Certificate) -> None:
        """Validate and store a certificate for later verifier lookups."""
        self.check_certificate(certificate)
        self._certificates[certificate.subject] = certificate

    def check_certificate(self, certificate: Certificate) -> None:
        """Raise :class:`CertificateError` unless the certificate is valid now."""
        root = self._roots.get(certificate.issuer)
        if root is None:
            raise CertificateError(f"untrusted issuer: {certificate.issuer!r}")
        if not root.verify(certificate.signed_payload(), certificate.signature):
            raise CertificateError(
                f"certificate for {certificate.subject!r} has an invalid issuer signature"
            )
        now = self._clock.now()
        if now < certificate.not_before:
            raise CertificateError(f"certificate for {certificate.subject!r} not yet valid")
        if now > certificate.not_after:
            raise CertificateError(f"certificate for {certificate.subject!r} has expired")
        if certificate.serial in self._revoked.get(certificate.issuer, set()):
            raise CertificateError(f"certificate for {certificate.subject!r} is revoked")

    def certificate_for(self, party_id: str) -> Certificate:
        certificate = self._certificates.get(party_id)
        if certificate is None:
            raise CertificateError(f"no certificate on file for {party_id!r}")
        return certificate

    def verifier_for(self, party_id: str) -> Verifier:
        """Resolve a (re-validated) verifier for *party_id*'s signatures."""
        certificate = self.certificate_for(party_id)
        self.check_certificate(certificate)
        return certificate.verifier()

    def known_parties(self) -> "list[str]":
        return sorted(self._certificates)
