"""Signature schemes binding evidence to key-holders.

Protocol messages carry ``sig_i(x)`` values — party ``P_i``'s signature on
a canonically encoded value ``x``.  The default scheme is RSA with
PKCS#1 v1.5-style deterministic padding over SHA-256.  An HMAC-based
scheme is provided for benchmarks that isolate protocol cost from
public-key cost (it is *not* non-repudiable, since verification requires
the shared key, and is flagged as such).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import constant_time_equal, hmac_digest, secure_hash
from repro.crypto.numbers import bytes_to_int, int_to_bytes
from repro.crypto.prng import RandomSource
from repro.crypto.rsa import (
    DEFAULT_KEY_BITS,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    rsa_sign_int,
    rsa_verify_int,
)
from repro.errors import SignatureError
from repro.obs.hooks import Instrumentation
from repro.util.encoding import canonical_bytes

# DigestInfo prefix for SHA-256 (DER), as in PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")


@dataclass(frozen=True)
class Signature:
    """A signature value tagged with its scheme and the signer's identity.

    The signer identity is advisory routing information; verification
    always resolves the public key independently (via the certificate
    store), so a forged ``signer`` field cannot redirect trust.
    """

    scheme: str
    signer: str
    value: bytes

    def to_dict(self) -> dict:
        return {"scheme": self.scheme, "signer": self.signer, "value": self.value}

    @staticmethod
    def from_dict(data: dict) -> "Signature":
        return Signature(
            scheme=str(data["scheme"]),
            signer=str(data["signer"]),
            value=bytes(data["value"]),
        )


class Signer:
    """A party's signing capability."""

    scheme = "abstract"

    def __init__(self, party_id: str) -> None:
        self.party_id = party_id

    def sign_bytes(self, data: bytes) -> Signature:
        raise NotImplementedError

    def sign(self, value: Any) -> Signature:
        """Sign any canonically encodable value."""
        return self.sign_bytes(canonical_bytes(value))


class Verifier:
    """Verification half of a signature scheme."""

    scheme = "abstract"

    def verify_bytes(self, data: bytes, signature: Signature) -> bool:
        raise NotImplementedError

    def verify(self, value: Any, signature: Signature) -> bool:
        return self.verify_bytes(canonical_bytes(value), signature)

    def require(self, value: Any, signature: Signature, context: str = "") -> None:
        """Verify or raise :class:`SignatureError` with diagnostic context."""
        if not self.verify(value, signature):
            where = f" in {context}" if context else ""
            raise SignatureError(
                f"signature by {signature.signer!r} failed verification{where}"
            )


def _pkcs1_encode(digest: bytes, length: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest."""
    payload = _SHA256_DIGEST_INFO + digest
    padding_len = length - len(payload) - 3
    if padding_len < 8:
        raise SignatureError("RSA modulus too small for SHA-256 PKCS#1 signature")
    return b"\x00\x01" + b"\xff" * padding_len + b"\x00" + payload


class RsaSigner(Signer):
    """RSA/SHA-256 signer (deterministic, PKCS#1 v1.5 padding)."""

    scheme = "rsa-sha256"

    def __init__(self, party_id: str, private_key: RsaPrivateKey) -> None:
        super().__init__(party_id)
        self._private_key = private_key

    @property
    def public_key(self) -> RsaPublicKey:
        return self._private_key.public_key

    def sign_bytes(self, data: bytes) -> Signature:
        digest = secure_hash(data)
        encoded = _pkcs1_encode(digest, self._private_key.byte_length)
        representative = rsa_sign_int(self._private_key, bytes_to_int(encoded))
        value = int_to_bytes(representative, self._private_key.byte_length)
        return Signature(scheme=self.scheme, signer=self.party_id, value=value)


class RsaVerifier(Verifier):
    """RSA/SHA-256 verifier for a single public key."""

    scheme = "rsa-sha256"

    def __init__(self, public_key: RsaPublicKey) -> None:
        self._public_key = public_key

    def verify_bytes(self, data: bytes, signature: Signature) -> bool:
        if signature.scheme != self.scheme:
            return False
        if len(signature.value) != self._public_key.byte_length:
            return False
        try:
            recovered = rsa_verify_int(self._public_key, bytes_to_int(signature.value))
        except ValueError:
            return False
        expected = _pkcs1_encode(secure_hash(data), self._public_key.byte_length)
        return int_to_bytes(recovered, self._public_key.byte_length) == expected


class HmacSigner(Signer):
    """Shared-key MAC 'signer' for protocol benchmarking only.

    Unlike RSA signatures, a MAC does not provide non-repudiation: any
    holder of the key can produce it.  The scheme name makes this explicit
    so evidence verification can refuse MACs where true signatures are
    required.
    """

    scheme = "hmac-sha256"

    def __init__(self, party_id: str, key: bytes) -> None:
        super().__init__(party_id)
        self._key = key

    def sign_bytes(self, data: bytes) -> Signature:
        return Signature(
            scheme=self.scheme,
            signer=self.party_id,
            value=hmac_digest(self._key, data),
        )


class HmacVerifier(Verifier):
    scheme = "hmac-sha256"

    def __init__(self, key: bytes) -> None:
        self._key = key

    def verify_bytes(self, data: bytes, signature: Signature) -> bool:
        if signature.scheme != self.scheme:
            return False
        return constant_time_equal(signature.value, hmac_digest(self._key, data))


class InstrumentedSigner(Signer):
    """Decorator timing every ``sign_bytes`` call into an instrumentation.

    Wrapping keeps the measurement at the crypto boundary: the protocol
    engines above see an ordinary :class:`Signer`, and the timing covers
    exactly one primitive operation (no double counting when an engine
    signs the same value once but logs it in several places).
    """

    def __init__(self, inner: Signer, obs: Instrumentation) -> None:
        super().__init__(inner.party_id)
        self.scheme = inner.scheme
        self._inner = inner
        self._obs = obs

    def sign_bytes(self, data: bytes) -> Signature:
        if not self._obs.enabled:
            return self._inner.sign_bytes(data)
        started = time.perf_counter()
        signature = self._inner.sign_bytes(data)
        self._obs.sign_timing(
            self.party_id, signature.scheme, len(data),
            time.perf_counter() - started,
        )
        return signature


class InstrumentedVerifier(Verifier):
    """Decorator timing every ``verify_bytes`` call into an instrumentation."""

    def __init__(self, inner: Verifier, obs: Instrumentation) -> None:
        self.scheme = inner.scheme
        self._inner = inner
        self._obs = obs

    def verify_bytes(self, data: bytes, signature: Signature) -> bool:
        if not self._obs.enabled:
            return self._inner.verify_bytes(data, signature)
        started = time.perf_counter()
        ok = self._inner.verify_bytes(data, signature)
        self._obs.verify_timing(
            signature.scheme, len(data), time.perf_counter() - started, ok,
        )
        return ok


@dataclass(frozen=True)
class KeyPair:
    """A party's signing key pair plus ready-made signer/verifier."""

    party_id: str
    private_key: RsaPrivateKey

    @property
    def public_key(self) -> RsaPublicKey:
        return self.private_key.public_key

    def signer(self) -> RsaSigner:
        return RsaSigner(self.party_id, self.private_key)

    def verifier(self) -> RsaVerifier:
        return RsaVerifier(self.public_key)


def generate_party_keypair(party_id: str,
                           bits: int = DEFAULT_KEY_BITS,
                           rng: "RandomSource | None" = None,
                           obs: "Instrumentation | None" = None) -> KeyPair:
    """Generate a named key pair for a party."""
    return KeyPair(party_id=party_id,
                   private_key=generate_keypair(bits, rng, obs=obs))


def verifier_for_public_key(key_dict: dict) -> Verifier:
    """Build a verifier from a serialised public key."""
    return RsaVerifier(RsaPublicKey.from_dict(key_dict))
