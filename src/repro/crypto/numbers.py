"""Number-theoretic primitives for the from-scratch RSA implementation.

The paper (section 4.2) assumes each party has a signature scheme that is
verifiable and unforgeable.  We build RSA from first principles on top of
Python's arbitrary-precision integers: Miller-Rabin primality testing,
prime generation, and modular inverses via the extended Euclidean
algorithm.  Nothing here is intended to resist side-channel attacks; it is
a faithful functional substrate for the middleware's evidence chain.
"""

from __future__ import annotations

from typing import Callable

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
]

# Deterministic Miller-Rabin witness sets: testing against these bases is
# *proven* correct for n below the associated bounds (Jaeschke; Sorenson &
# Webster), which covers all moduli used in tests without randomness.
_DETERMINISTIC_WITNESSES = [
    (2047, [2]),
    (1373653, [2, 3]),
    (9080191, [31, 73]),
    (25326001, [2, 3, 5]),
    (3215031751, [2, 3, 5, 7]),
    (4759123141, [2, 7, 61]),
    (1122004669633, [2, 13, 23, 1662803]),
    (2152302898747, [2, 3, 5, 7, 11]),
    (3474749660383, [2, 3, 5, 7, 11, 13]),
    (341550071728321, [2, 3, 5, 7, 11, 13, 17]),
    (3825123056546413051, [2, 3, 5, 7, 11, 13, 17, 19, 23]),
    (318665857834031151167461, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]),
]


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True if *a* witnesses that *n* is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rand_below: "Callable[[int], int] | None" = None,
                      rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    For values below the largest proven deterministic bound the test is
    exact.  Above it, *rounds* random witnesses drawn via *rand_below*
    (a callable returning a uniform integer in ``[0, bound)``) give an
    error probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return not any(_miller_rabin_witness(n, a) for a in witnesses)
    if rand_below is None:
        raise ValueError("rand_below is required for candidates above the deterministic bound")
    for _ in range(rounds):
        a = 2 + rand_below(n - 3)
        if _miller_rabin_witness(n, a):
            return False
    return True


def generate_prime(bits: int, rand_below: Callable[[int], int]) -> int:
    """Generate a random prime of exactly *bits* bits.

    The candidate has its two top bits set (so that the product of two such
    primes has exactly ``2 * bits`` bits) and is made odd before testing.
    """
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    top_bits = (1 << (bits - 1)) | (1 << (bits - 2))
    while True:
        candidate = rand_below(1 << bits) | top_bits | 1
        if is_probable_prime(candidate, rand_below):
            return candidate


def extended_gcd(a: int, b: int) -> "tuple[int, int, int]":
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def mod_inverse(a: int, modulus: int) -> int:
    """Return the multiplicative inverse of *a* modulo *modulus*."""
    g, x, _ = extended_gcd(a % modulus, modulus)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus}")
    return x % modulus


def int_to_bytes(value: int, length: "int | None" = None) -> bytes:
    """Big-endian byte encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("cannot encode negative integers")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")
