"""Secure pseudo-random sequence generation.

Section 4.2 of the paper assumes "a secure pseudo-random sequence
generator to generate statistically random and unpredictable sequences of
bits".  We provide two implementations behind one interface:

* :class:`SystemRandomSource` — the operating system CSPRNG (``secrets``),
  used by default in real deployments.
* :class:`DeterministicRandomSource` — a SHA-256 counter-mode generator
  seeded explicitly.  Counter-mode hashing is a standard CSPRNG
  construction; determinism is what makes the protocol test suite and the
  simulated network reproducible.
"""

from __future__ import annotations

import hashlib
import secrets
import threading


class RandomSource:
    """Abstract source of random bytes and bounded integers."""

    def random_bytes(self, length: int) -> bytes:
        raise NotImplementedError

    def random_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        if bound == 1:
            return 0
        bits = bound.bit_length()
        nbytes = (bits + 7) // 8
        mask = (1 << bits) - 1
        while True:
            candidate = int.from_bytes(self.random_bytes(nbytes), "big") & mask
            if candidate < bound:
                return candidate

    def random_int(self, bits: int) -> int:
        """Uniform integer with at most *bits* bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        return self.random_below(1 << bits)


class SystemRandomSource(RandomSource):
    """Operating-system CSPRNG."""

    def random_bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        return secrets.token_bytes(length)


class DeterministicRandomSource(RandomSource):
    """SHA-256 counter-mode generator with an explicit seed.

    The output stream is ``SHA256(seed || counter)`` blocks.  Unpredictable
    to parties who do not know the seed, and exactly reproducible for a
    given seed, which the simulation runtime relies on.
    """

    _BLOCK = hashlib.sha256().digest_size

    def __init__(self, seed: "bytes | str | int") -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        elif not isinstance(seed, bytes):
            raise TypeError("seed must be bytes, str or int")
        self._seed = hashlib.sha256(b"repro-prng-seed:" + seed).digest()
        self._counter = 0
        self._buffer = b""
        self._lock = threading.Lock()

    def random_bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        with self._lock:
            while len(self._buffer) < length:
                block = hashlib.sha256(
                    self._seed + self._counter.to_bytes(8, "big")
                ).digest()
                self._counter += 1
                self._buffer += block
            out, self._buffer = self._buffer[:length], self._buffer[length:]
            return out

    def fork(self, label: str) -> "DeterministicRandomSource":
        """Derive an independent child stream, e.g. one per party.

        Forking keeps per-party randomness independent of the *order* in
        which parties consume bytes, which keeps simulations deterministic
        under scheduling changes.
        """
        return DeterministicRandomSource(self._seed + label.encode("utf-8"))
