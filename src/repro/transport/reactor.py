"""Single-threaded selector reactor for the TCP transport.

The pooled transport (PR 3) spends one writer thread per peer, one
serve thread per inbound connection, one accept thread per listener and
a shared timer thread — fine for a handful of organisations, but the
thread count caps how many peers one process can front.  The reactor
replaces all of them with **one** event-loop thread owning every
socket:

* listeners, inbound connections and outbound channels are all
  non-blocking and multiplexed through one :mod:`selectors` selector;
* write interest is toggled per channel — a drained channel costs
  nothing until the next frame is queued;
* the retransmission timer heap is folded into the loop's ``select``
  timeout, so timers need no thread of their own;
* cross-thread entry points (``enqueue``, ``schedule``, listener
  registration) post closures to a command queue and tap a self-pipe,
  never touching socket state from outside the loop.

Semantics match the pooled mode: best-effort delivery, frames queued to
a dead peer are dropped (the reliable layer retransmits), reconnects
back off briefly, and a connection opens with the codec preamble of
:mod:`repro.wire`.  Inbound envelopes are dispatched to the party
handler *inline* on the loop thread — protocol handlers are sans-IO and
non-blocking by construction, and any send they trigger is itself just
a queue append.
"""

from __future__ import annotations

import collections
import errno
import heapq
import itertools
import selectors
import socket
import threading
import time
from typing import Callable, Optional

from repro.errors import TransportError
from repro.transport.base import Envelope, TimerHandle
from repro.wire import FrameDecoder, FrameError, FrameTooLargeError, WireError

#: Frames coalesced into one outbound buffer per channel visit; bounds
#: the memory copied around by ``del out[:sent]`` on partial writes.
_WRITE_CHUNK_FRAMES = 64

#: recv() calls per readable connection per loop visit.  The selector is
#: level-triggered, so a firehose connection resurfaces next iteration
#: instead of starving every other socket.
_READ_BURSTS = 16

_CONNECT_OK = (0, errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY)


class _TimerEntry:
    __slots__ = ("callback", "cancelled")

    def __init__(self, callback: Callable[[], None]) -> None:
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _Channel:
    """Outbound connection state for one recipient (loop-thread only)."""

    __slots__ = ("recipient", "sock", "connecting", "registered", "fresh",
                 "ever_connected", "next_attempt", "pending", "out",
                 "unreported")

    def __init__(self, recipient: str) -> None:
        self.recipient = recipient
        self.sock: "Optional[socket.socket]" = None
        self.connecting = False
        self.registered = False
        self.fresh = False
        self.ever_connected = False
        self.next_attempt = 0.0
        # (sender, frame) queue -> coalesced out buffer -> the socket.
        self.pending: "collections.deque[tuple[str, bytes]]" = collections.deque()
        self.out = bytearray()
        # Frames merged into `out` but not yet fully on the wire; their
        # raw_send outcome is reported when the buffer drains or breaks.
        self.unreported: "list[tuple[str, int]]" = []


class _Inbound:
    """One accepted connection and its incremental frame decoder."""

    __slots__ = ("sock", "party", "decoder")

    def __init__(self, sock: socket.socket, party: str,
                 decoder: FrameDecoder) -> None:
        self.sock = sock
        self.party = party
        self.decoder = decoder


class _Reactor:
    """The event loop.  Owned by a :class:`~repro.transport.tcp.TcpNetwork`
    constructed with ``reactor=True``; the thread starts lazily on the
    first listener, frame or timer."""

    def __init__(self, network) -> None:
        self._network = network
        self._selector = selectors.DefaultSelector()
        wake_r, wake_w = socket.socketpair()
        wake_r.setblocking(False)
        wake_w.setblocking(False)
        self._wake_r = wake_r
        self._wake_w = wake_w
        self._selector.register(wake_r, selectors.EVENT_READ, ("wake", None))
        # Guards the command queue, handler map, stop flag and thread
        # handle; every socket/heap structure is loop-thread-only.
        self._lock = threading.Lock()
        self._commands: "collections.deque[Callable[[], None]]" = collections.deque()
        self._handlers: "dict[str, Callable[[Envelope], None]]" = {}
        self._heap: "list[tuple[float, int, _TimerEntry]]" = []
        self._tie = itertools.count()
        self._channels: "dict[str, _Channel]" = {}
        self._listen_socks: "dict[str, socket.socket]" = {}
        self._inbound: "set[_Inbound]" = set()
        self._thread: "Optional[threading.Thread]" = None
        self._stopped = False

    # ------------------------------------------------------------------
    # cross-thread entry points
    # ------------------------------------------------------------------

    def add_listener(self, party_id: str, sock: socket.socket,
                     handler: Callable[[Envelope], None]) -> None:
        """Adopt a bound+listening non-blocking socket for *party_id*."""
        with self._lock:
            self._handlers[party_id] = handler
        self._post(lambda: self._register_listener(party_id, sock))

    def set_handler(self, party_id: str,
                    handler: Callable[[Envelope], None]) -> None:
        with self._lock:
            self._handlers[party_id] = handler

    def enqueue(self, sender: str, recipient: str, frame: bytes) -> None:
        """Queue one encoded frame for best-effort delivery."""
        self._post(lambda: self._enqueue_frame(sender, recipient, frame))

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> TimerHandle:
        entry = _TimerEntry(callback)
        deadline = time.monotonic() + max(0.0, delay)
        self._post(lambda: heapq.heappush(
            self._heap, (deadline, next(self._tie), entry)))
        return TimerHandle(entry.cancel)

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            thread = self._thread
        self._wake()
        if thread is not None:
            thread.join(timeout=1.0)
        else:
            self._teardown_all()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # posting machinery
    # ------------------------------------------------------------------

    def _post(self, command: Callable[[], None]) -> None:
        with self._lock:
            if self._stopped:
                return
            self._commands.append(command)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, daemon=True, name="tcp-reactor",
                )
                self._thread.start()
        self._wake()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # a wakeup is already pending (or we are shutting down)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._stopped:
                    break
                commands = list(self._commands)
                self._commands.clear()
            for command in commands:
                try:
                    command()
                except Exception:  # noqa: BLE001 - a bad command must not kill I/O
                    self._network._obs.handler_error("", "command")
            now = time.monotonic()
            heap = self._heap
            while heap and heap[0][0] <= now:
                entry = heapq.heappop(heap)[2]
                if entry.cancelled:
                    continue
                try:
                    entry.callback()
                except Exception:  # noqa: BLE001 - a timer bug must not kill the loop
                    self._network._obs.handler_error("", "timer")
            timeout: "Optional[float]" = None
            if heap:
                timeout = max(0.0, heap[0][0] - time.monotonic())
            with self._lock:
                if self._commands:
                    timeout = 0.0  # work arrived while callbacks ran
            try:
                events = self._selector.select(timeout)
            except OSError:
                events = []
            for key, mask in events:
                kind, data = key.data
                if kind == "wake":
                    self._drain_wake()
                elif kind == "listener":
                    self._accept(key.fileobj, data)
                elif kind == "in":
                    self._readable(data)
                elif kind == "out":
                    self._channel_event(data)
        self._teardown_all()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    # ------------------------------------------------------------------
    # listeners and inbound connections
    # ------------------------------------------------------------------

    def _register_listener(self, party_id: str,
                           sock: socket.socket) -> None:
        old = self._listen_socks.pop(party_id, None)
        if old is not None:
            self._unregister(old)
            _close(old)
        self._listen_socks[party_id] = sock
        self._selector.register(sock, selectors.EVENT_READ,
                                ("listener", party_id))

    def _accept(self, server: socket.socket, party_id: str) -> None:
        while True:
            try:
                conn, _ = server.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn.setblocking(False)
            inbound = _Inbound(
                conn, party_id,
                FrameDecoder(max_frame=self._network.max_frame),
            )
            self._inbound.add(inbound)
            self._selector.register(conn, selectors.EVENT_READ,
                                    ("in", inbound))

    def _readable(self, inbound: _Inbound) -> None:
        closed = False
        for _ in range(_READ_BURSTS):
            try:
                chunk = inbound.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                closed = True
                break
            if not chunk:
                closed = True
                break
            inbound.decoder.feed(chunk)
            try:
                while True:
                    frame = inbound.decoder.next_frame()
                    if frame is None:
                        break
                    self._dispatch(inbound, frame)
            except FrameError as exc:
                reason = ("oversized" if isinstance(exc, FrameTooLargeError)
                          else "framing")
                self._network._obs.malformed_frame(inbound.party, reason)
                closed = True
                break
        if closed:
            self._close_inbound(inbound)

    def _dispatch(self, inbound: _Inbound, frame: bytes) -> None:
        obs = self._network._obs
        decoder = inbound.decoder
        started = time.perf_counter() if obs.enabled else 0.0
        try:
            data = decoder.decode(frame)
        except WireError:
            obs.malformed_frame(inbound.party, "decode")
            return
        if obs.enabled:
            obs.frame_decoded(decoder.codec or "json", len(frame),
                              time.perf_counter() - started)
        try:
            envelope = Envelope.from_dict(data)
        except (KeyError, TypeError, ValueError, AttributeError):
            obs.malformed_frame(inbound.party, "bad-envelope")
            return
        with self._lock:
            handler = self._handlers.get(inbound.party)
        if handler is None:
            return
        try:
            handler(envelope)
        except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
            obs.handler_error(inbound.party, "dispatch")

    def _close_inbound(self, inbound: _Inbound) -> None:
        self._inbound.discard(inbound)
        self._unregister(inbound.sock)
        _close(inbound.sock)

    # ------------------------------------------------------------------
    # outbound channels
    # ------------------------------------------------------------------

    def _enqueue_frame(self, sender: str, recipient: str,
                       frame: bytes) -> None:
        channel = self._channels.get(recipient)
        if channel is None:
            channel = self._channels[recipient] = _Channel(recipient)
        if channel.sock is None:
            if time.monotonic() < channel.next_attempt:
                self._report_frames(recipient, [(sender, len(frame))],
                                    ok=False)
                return
            if not self._start_connect(channel, sender):
                self._report_frames(recipient, [(sender, len(frame))],
                                    ok=False)
                return
        channel.pending.append((sender, frame))
        if not channel.connecting:
            self._flush_channel(channel)
        else:
            self._want_write(channel, True)

    def _start_connect(self, channel: _Channel, sender: str) -> bool:
        network = self._network
        try:
            host, port = network.address_of(channel.recipient)
        except TransportError:
            self._note_connect_failure(channel, sender)
            return False
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        err = sock.connect_ex((host, port))
        if err not in _CONNECT_OK:
            _close(sock)
            self._note_connect_failure(channel, sender)
            return False
        channel.sock = sock
        channel.connecting = True
        channel.fresh = True
        self._want_write(channel, True)
        # Fold the connect timeout into the timer heap: if the peer has
        # not answered by then, treat the attempt as failed.
        deadline = time.monotonic() + network._connect_timeout
        entry = _TimerEntry(
            lambda: self._connect_deadline(channel, sock, sender))
        heapq.heappush(self._heap, (deadline, next(self._tie), entry))
        return True

    def _connect_deadline(self, channel: _Channel, sock: socket.socket,
                          sender: str) -> None:
        if channel.sock is sock and channel.connecting:
            self._fail_channel(channel, sender)

    def _channel_event(self, channel: _Channel) -> None:
        sock = channel.sock
        if sock is None:
            return
        sender = channel.pending[0][0] if channel.pending else ""
        if channel.connecting:
            err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if err != 0:
                self._fail_channel(channel, sender)
                return
            channel.connecting = False
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            network = self._network
            if network._obs.enabled:
                network._obs.connection_opened(
                    sender, channel.recipient,
                    reconnect=channel.ever_connected,
                )
            channel.ever_connected = True
            # The codec preamble leads every connection.
            preamble = network._encoder.preamble
            if preamble:
                channel.out += preamble
        self._flush_channel(channel)

    def _flush_channel(self, channel: _Channel) -> None:
        sock = channel.sock
        if sock is None or channel.connecting:
            return
        obs = self._network._obs
        while True:
            if not channel.out:
                if not channel.pending:
                    break
                frames: "list[bytes]" = []
                merged: "list[tuple[str, int]]" = []
                while channel.pending and len(frames) < _WRITE_CHUNK_FRAMES:
                    sender, frame = channel.pending.popleft()
                    frames.append(frame)
                    merged.append((sender, len(frame)))
                if obs.enabled:
                    if len(frames) > 1:
                        obs.frames_coalesced(merged[0][0], channel.recipient,
                                             len(frames))
                    if channel.fresh:
                        channel.fresh = False
                    else:
                        obs.connection_reused(merged[0][0],
                                              channel.recipient)
                channel.out += b"".join(frames)
                channel.unreported.extend(merged)
            try:
                sent = sock.send(channel.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._fail_channel(
                    channel,
                    channel.unreported[0][0] if channel.unreported else "")
                return
            if sent <= 0:
                break
            del channel.out[:sent]
            if not channel.out and channel.unreported:
                self._report_frames(channel.recipient, channel.unreported,
                                    ok=True)
                channel.unreported = []
        self._want_write(channel,
                         bool(channel.out or channel.pending
                              or channel.connecting))

    def _fail_channel(self, channel: _Channel, sender: str) -> None:
        """Tear down a broken/unreachable channel; frames are lost (the
        reliable layer retransmits) and the next enqueue reconnects
        after a short backoff."""
        lost = channel.unreported + [(s, len(f)) for s, f in channel.pending]
        channel.unreported = []
        channel.pending.clear()
        channel.out = bytearray()
        sock = channel.sock
        channel.sock = None
        channel.connecting = False
        if sock is not None:
            self._unregister(sock)
            _close(sock)
        channel.registered = False
        channel.next_attempt = (time.monotonic()
                                + self._network.reconnect_backoff)
        if self._network._obs.enabled:
            self._network._obs.connection_failed(sender, channel.recipient)
        if lost:
            self._report_frames(channel.recipient, lost, ok=False)

    def _note_connect_failure(self, channel: _Channel, sender: str) -> None:
        channel.next_attempt = (time.monotonic()
                                + self._network.reconnect_backoff)
        if self._network._obs.enabled:
            self._network._obs.connection_failed(sender, channel.recipient)

    def _report_frames(self, recipient: str,
                       frames: "list[tuple[str, int]]", ok: bool) -> None:
        obs = self._network._obs
        if not obs.enabled:
            return
        for sender, size in frames:
            obs.raw_send(sender, recipient, size, ok=ok)

    def _want_write(self, channel: _Channel, want: bool) -> None:
        sock = channel.sock
        if sock is None:
            return
        if want and not channel.registered:
            self._selector.register(sock, selectors.EVENT_WRITE,
                                    ("out", channel))
            channel.registered = True
        elif not want and channel.registered:
            self._unregister(sock)
            channel.registered = False

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _unregister(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass

    def _teardown_all(self) -> None:
        for sock in self._listen_socks.values():
            _shutdown_close(sock)
        self._listen_socks.clear()
        for inbound in list(self._inbound):
            _shutdown_close(inbound.sock)
        self._inbound.clear()
        for channel in self._channels.values():
            if channel.sock is not None:
                _close(channel.sock)
                channel.sock = None
        self._channels.clear()
        _close(self._wake_r)
        _close(self._wake_w)
        try:
            self._selector.close()
        except OSError:
            pass


def _close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _shutdown_close(sock: socket.socket) -> None:
    # shutdown() before close(): a peer blocked in recv() on the other
    # end must observe EOF, and the in-kernel reference must not keep a
    # restarted listener from rebinding the port.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    _close(sock)
