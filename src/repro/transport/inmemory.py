"""Deterministic discrete-event simulated network.

This is the testbed substrate for the reproduction: a virtual-time network
with seeded randomness and first-class fault injection —

* per-link latency with jitter,
* message drop and duplication probabilities,
* network partitions that heal (section 4.2: "network partitions are
  assumed to heal eventually"),
* node crash / recovery (messages to a crashed node are lost; the node's
  timers are suspended).

Identical seeds and schedules produce identical executions, which the
protocol test-suite and the benchmark harness rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.prng import DeterministicRandomSource
from repro.errors import ConfigurationError
from repro.transport.base import (
    Envelope,
    MessageHandler,
    Network,
    NetworkFilter,
    TimerHandle,
    normalise_filter_result,
)
from repro.util.clocks import VirtualClock


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass
class LinkProfile:
    """Fault/latency profile for a directed link (or the whole network)."""

    latency: float = 0.01
    jitter: float = 0.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0

    def validate(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ConfigurationError("latency and jitter must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError("drop probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ConfigurationError("duplicate probability must be in [0, 1]")


class NetworkStats:
    """Counters for benchmark harnesses and assertions."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.partition_blocked = 0
        self.crash_blocked = 0
        self.bytes_sent = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class SimNetwork(Network):
    """Seeded, virtual-time network simulator."""

    def __init__(self, seed: "int | str" = 0,
                 default_profile: "LinkProfile | None" = None) -> None:
        self._clock = VirtualClock()
        self._rng = DeterministicRandomSource(f"simnet:{seed}")
        self._queue: "list[_Event]" = []
        self._event_seq = itertools.count()
        self._handlers: "dict[str, MessageHandler]" = {}
        self._profiles: "dict[tuple[str, str], LinkProfile]" = {}
        self._default_profile = default_profile or LinkProfile()
        self._default_profile.validate()
        self._partitions: "list[set[str]]" = []
        self._crashed: "set[str]" = set()
        self._filters: "list[NetworkFilter]" = []
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def register(self, party_id: str, handler: MessageHandler) -> None:
        self._handlers[party_id] = handler

    def now(self) -> float:
        return self._clock.now()

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(time=self._clock.now() + delay, seq=next(self._event_seq),
                       action=callback)
        heapq.heappush(self._queue, event)

        def cancel() -> None:
            event.cancelled = True

        return TimerHandle(cancel)

    def send(self, envelope: Envelope) -> int:
        size = _approx_size(envelope)
        self.stats.sent += 1
        self.stats.bytes_sent += size
        envelopes = [envelope]
        for net_filter in self._filters:
            passed: "list[Envelope]" = []
            for env in envelopes:
                passed.extend(normalise_filter_result(net_filter.on_send(env)))
            envelopes = passed
        for env in envelopes:
            self._transmit(env)
        return size

    # ------------------------------------------------------------------
    # Fault injection / topology control
    # ------------------------------------------------------------------

    def set_link_profile(self, sender: str, recipient: str,
                         profile: LinkProfile) -> None:
        profile.validate()
        self._profiles[(sender, recipient)] = profile

    def add_filter(self, net_filter: NetworkFilter) -> None:
        self._filters.append(net_filter)

    def remove_filter(self, net_filter: NetworkFilter) -> None:
        self._filters.remove(net_filter)

    def partition(self, *groups: "set[str] | list[str]") -> None:
        """Split the network: traffic may only flow within a group."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def crash(self, party_id: str) -> None:
        """Crash a node: inbound messages are lost until recovery."""
        self._crashed.add(party_id)

    def recover(self, party_id: str) -> None:
        self._crashed.discard(party_id)

    def is_crashed(self, party_id: str) -> bool:
        return party_id in self._crashed

    def _partitioned(self, sender: str, recipient: str) -> bool:
        if not self._partitions:
            return False
        for group in self._partitions:
            if sender in group and recipient in group:
                return False
        return True

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _transmit(self, envelope: Envelope) -> None:
        profile = self._profiles.get(
            (envelope.sender, envelope.recipient), self._default_profile
        )
        if self._chance(profile.drop_probability):
            self.stats.dropped += 1
            return
        copies = 1
        if self._chance(profile.duplicate_probability):
            copies = 2
            self.stats.duplicated += 1
        for _ in range(copies):
            delay = profile.latency
            if profile.jitter:
                delay += (self._rng.random_below(10_000) / 10_000.0) * profile.jitter
            self.schedule(delay, lambda env=envelope: self._deliver(env))

    def _chance(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return self._rng.random_below(1_000_000) < int(probability * 1_000_000)

    def _deliver(self, envelope: Envelope) -> None:
        # Partition and crash state are evaluated at delivery time, so a
        # partition that heals while a message is "in flight" lets it
        # through — matching the paper's eventually-healing channel model.
        if self._partitioned(envelope.sender, envelope.recipient):
            self.stats.partition_blocked += 1
            return
        if envelope.recipient in self._crashed:
            self.stats.crash_blocked += 1
            return
        handler = self._handlers.get(envelope.recipient)
        if handler is None:
            return
        self.stats.delivered += 1
        handler(envelope)

    def step(self) -> bool:
        """Execute the next scheduled event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._clock.advance_to(event.time)
            event.action()
            return True
        return False

    def run(self, max_time: "float | None" = None,
            until: "Optional[Callable[[], bool]]" = None,
            max_events: int = 1_000_000) -> float:
        """Drive the event loop.

        Stops when the queue drains, *until* returns True, virtual time
        would exceed *max_time*, or *max_events* fire (runaway guard).
        Returns the virtual time at stop.
        """
        for _ in range(max_events):
            if until is not None and until():
                return self._clock.now()
            if not self._queue:
                # Idle: virtual time still passes up to the horizon, so
                # timeout/deadline logic observes elapsed time.
                if max_time is not None:
                    self._clock.advance_to(max_time)
                return self._clock.now()
            next_time = self._queue[0].time
            if max_time is not None and next_time > max_time:
                self._clock.advance_to(max_time)
                return self._clock.now()
            if not self.step():
                # Only cancelled events remained; treat as idle.
                if max_time is not None:
                    self._clock.advance_to(max_time)
                return self._clock.now()
        raise RuntimeError(f"simulation exceeded {max_events} events")

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)


def _approx_size(envelope: Envelope) -> int:
    from repro.obs.hooks import approx_size

    return approx_size(envelope.to_dict())
