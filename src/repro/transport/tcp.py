"""TCP transport (standard-library sockets).

The original prototype used Java RMI between organisations; this module is
the real-network counterpart of the simulated substrate: one listener
socket per registered party.  Frames are produced by :mod:`repro.wire` —
canonical-JSON lines by default, or the length-prefixed binary codec when
constructed with ``codec="binary"`` (signatures and evidence stay on
canonical JSON either way; the codec is framing only).

Three scheduling modes are supported:

* **pooled** (default) — one long-lived connection per remote peer, owned
  by a dedicated writer thread.  Senders enqueue frames; the writer drains
  the whole queue and pushes it through a single ``sendall``, so
  back-to-back sends (an m2/m3 fan-out, a retransmission burst) coalesce
  into one syscall over one connection instead of paying a TCP handshake
  per message.  A broken connection is detected on write, the affected
  frames are dropped, and the next batch transparently reconnects (with a
  short backoff so a dead peer is not hammered).
* **reactor** (``reactor=True``, or :class:`SelectorReactorNetwork`) —
  one :mod:`selectors` event-loop thread owns *every* socket: listeners,
  inbound connections, outbound channels and the retransmission timers.
  Same best-effort semantics as pooled, but thread count stays constant
  as the community grows instead of scaling with peers and connections.
* **per-message** — the original semantics: one short-lived connection per
  frame.  Kept for comparison benchmarks and as a fallback.

All modes are best-effort — connection failures drop frames and the
reliable layer's retransmission recovers, exactly as over the simulated
lossy network.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import random
import socket
import threading
import time
from typing import Callable, Optional

from repro.errors import TransportError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.transport.base import Envelope, MessageHandler, Network, TimerHandle
from repro.transport.reactor import _Reactor
from repro.util.clocks import MonotonicClock
from repro.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    CODECS,
    MAX_FRAME,
    EnvelopeEncoder,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    WireError,
)

#: Minimum delay between reconnect attempts to a peer that refused the
#: last connection.  Frames arriving inside the window are dropped
#: immediately (best-effort); retransmission recovers once the peer is
#: back.
RECONNECT_BACKOFF = 0.05


class TcpNetwork(Network):
    """Real-socket network hosting any number of party endpoints.

    In a single process it is self-contained: ``register`` assigns an
    ephemeral port and records it in the address directory.  For
    multi-process deployments, pre-populate the directory with
    ``add_remote_party`` (and pass an explicit ``port`` to ``register``
    so peers can find this process after a restart).
    """

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 2.0,
                 obs: "Instrumentation | None" = None,
                 drop_probability: float = 0.0,
                 drop_seed: "int | None" = None,
                 pooled: bool = True,
                 codec: str = CODEC_JSON,
                 reactor: bool = False,
                 max_frame: int = MAX_FRAME) -> None:
        if codec not in CODECS:
            raise ValueError(f"unknown wire codec {codec!r}")
        self._host = host
        self._connect_timeout = connect_timeout
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._codec = codec
        self._encoder = EnvelopeEncoder(codec)
        self._max_frame = max_frame
        self._reactor = _Reactor(self) if reactor else None
        self._reactor_ports: "dict[str, int]" = {}
        # Optional fault injection: drop outbound data frames before they
        # reach the socket, so demos and tests can exercise the reliable
        # layer's retransmission over real sockets deterministically.
        # Each (sender, recipient) link draws from its own seeded stream,
        # so the k-th send on a link is dropped (or not) independently of
        # how sender threads interleave across links.
        self._drop_probability = drop_probability
        self._drop_seed = drop_seed
        self._drop_rngs: "dict[tuple[str, str], random.Random]" = {}
        self._drop_lock = threading.Lock()
        self._pooled = pooled
        self._directory: "dict[str, tuple[str, int]]" = {}
        self._listeners: "dict[str, _Listener]" = {}
        self._channels: "dict[str, _PeerChannel]" = {}
        self._lock = threading.Lock()
        # Retransmission pacing and timeouts are interval arithmetic, so
        # the network clock must not step backwards under NTP corrections.
        self._clock = MonotonicClock()
        self._timers = _TimerWheel(obs=self._obs)
        self._closed = False

    @property
    def pooled(self) -> bool:
        return self._pooled

    @property
    def codec(self) -> str:
        """Wire codec frames leave this network in ("json" / "binary")."""
        return self._codec

    @property
    def reactor(self) -> bool:
        """True when the selector reactor owns all socket work."""
        return self._reactor is not None

    @property
    def max_frame(self) -> int:
        """Upper bound accepted for one inbound frame, in bytes."""
        return self._max_frame

    @property
    def reconnect_backoff(self) -> float:
        return RECONNECT_BACKOFF

    def add_remote_party(self, party_id: str, host: str, port: int) -> None:
        """Record the address of a party hosted by another process."""
        with self._lock:
            self._directory[party_id] = (host, port)

    def address_of(self, party_id: str) -> "tuple[str, int]":
        with self._lock:
            address = self._directory.get(party_id)
        if address is None:
            raise TransportError(f"no known address for party {party_id!r}")
        return address

    def register(self, party_id: str, handler: MessageHandler,
                 port: int = 0) -> None:
        """Start listening for *party_id*; ``port=0`` picks an ephemeral one.

        A fixed *port* lets a restarted process resume the address its
        peers already hold, so their pooled connections can reconnect.
        """
        with self._lock:
            if self._closed:
                raise TransportError("network is closed")
            if self._reactor is not None:
                if party_id in self._reactor_ports:
                    self._reactor.set_handler(party_id, handler)
                    return
                # Bind synchronously so the port is in the directory
                # before register() returns; the reactor loop adopts the
                # socket for accepting.
                server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                server.bind((self._host, port))
                server.listen(128)
                server.setblocking(False)
                actual_port = server.getsockname()[1]
                self._reactor_ports[party_id] = actual_port
                self._directory[party_id] = (self._host, actual_port)
                self._reactor.add_listener(party_id, server, handler)
                return
            existing = self._listeners.get(party_id)
            if existing is not None:
                existing.handler = handler
                return
            listener = _Listener(self._host, handler, port=port,
                                 obs=self._obs, party_id=party_id,
                                 max_frame=self._max_frame)
            listener.start()
            self._listeners[party_id] = listener
            self._directory[party_id] = (self._host, listener.port)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, envelope: Envelope) -> "int | None":
        try:
            host, port = self.address_of(envelope.recipient)
        except TransportError:
            return None  # unknown party: drop, retransmission may find it
        if self._should_drop(envelope):
            if self._obs.enabled:
                self._obs.raw_send(envelope.sender, envelope.recipient,
                                   0, ok=False)
            return None  # injected loss: the reliable layer retransmits
        frame = self._encode_frame(envelope)
        # Reported size excludes the newline terminator for JSON (the
        # historical accounting) and is the whole frame for binary.
        size = len(frame) - 1 if self._codec == CODEC_JSON else len(frame)
        if self._reactor is not None:
            self._reactor.enqueue(envelope.sender, envelope.recipient, frame)
            return size
        if self._pooled:
            try:
                channel = self._channel_for(envelope.recipient)
            except TransportError:
                return None  # network closed concurrently: best-effort drop
            channel.enqueue(envelope.sender, frame)
            return size
        try:
            with socket.create_connection((host, port), timeout=self._connect_timeout) as conn:
                # A per-message connection is fresh every time, so the
                # codec preamble rides in front of every frame.
                conn.sendall(self._encoder.preamble + frame)
        except OSError:
            if self._obs.enabled:
                self._obs.raw_send(envelope.sender, envelope.recipient,
                                   len(frame), ok=False)
            return None  # best-effort: the reliable layer retransmits
        if self._obs.enabled:
            self._obs.raw_send(envelope.sender, envelope.recipient,
                               len(frame), ok=True)
        return size

    def _encode_frame(self, envelope: Envelope) -> bytes:
        obs = self._obs
        if not obs.enabled:
            return self._encoder.encode(envelope)
        started = time.perf_counter()
        frame = self._encoder.encode(envelope)
        obs.frame_encoded(self._codec, len(frame),
                          time.perf_counter() - started)
        return frame

    def _should_drop(self, envelope: Envelope) -> bool:
        if self._drop_probability <= 0.0:
            return False
        link = (envelope.sender, envelope.recipient)
        with self._drop_lock:
            rng = self._drop_rngs.get(link)
            if rng is None:
                # String seeding is hash-randomisation-proof, so the same
                # drop_seed reproduces the same per-link pattern across
                # processes and thread interleavings.
                rng = random.Random(
                    f"{self._drop_seed}|{envelope.sender}->{envelope.recipient}"
                )
                self._drop_rngs[link] = rng
            return rng.random() < self._drop_probability

    def _channel_for(self, recipient: str) -> "_PeerChannel":
        with self._lock:
            if self._closed:
                raise TransportError("network is closed")
            channel = self._channels.get(recipient)
            if channel is None:
                channel = _PeerChannel(self, recipient)
                self._channels[recipient] = channel
            return channel

    # ------------------------------------------------------------------
    # timers / lifecycle
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        # One shared timer heap instead of a threading.Timer (= one OS
        # thread) per call: the reliable layer arms a retransmit timer on
        # *every* send and cancels almost all of them, so arming must cost
        # a heap push, not a thread spawn.  In reactor mode the heap is
        # folded into the event loop itself — zero timer threads.
        if self._reactor is not None:
            return self._reactor.schedule(delay, callback)
        return self._timers.schedule(delay, callback)

    def now(self) -> float:
        return self._clock.now()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            listeners = list(self._listeners.values())
            self._listeners.clear()
            channels = list(self._channels.values())
            self._channels.clear()
        self._timers.stop()
        if self._reactor is not None:
            self._reactor.stop()
        for channel in channels:
            channel.stop()
        for listener in listeners:
            listener.stop()


class SelectorReactorNetwork(TcpNetwork):
    """:class:`TcpNetwork` pinned to the selector-reactor mode.

    A convenience facade for the hot path: one event-loop thread owns
    every socket and timer, and frames default to the binary codec.
    Pass ``codec="json"`` to keep reactor scheduling with legacy
    framing (useful for interop benchmarking); the pooled and
    per-message modes remain available on ``TcpNetwork`` itself.
    """

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 2.0,
                 obs: "Instrumentation | None" = None,
                 drop_probability: float = 0.0,
                 drop_seed: "int | None" = None,
                 codec: str = CODEC_BINARY,
                 max_frame: int = MAX_FRAME) -> None:
        super().__init__(
            host=host,
            connect_timeout=connect_timeout,
            obs=obs,
            drop_probability=drop_probability,
            drop_seed=drop_seed,
            pooled=True,
            codec=codec,
            reactor=True,
            max_frame=max_frame,
        )


class _TimerWheel:
    """Shared one-thread timer service backed by a heap.

    ``schedule`` is a heap push; cancellation flips a flag and the entry
    is discarded when it surfaces.  Due callbacks run on a short-lived
    worker thread (not the dispatcher) so a callback that blocks — a
    retransmission over a dead per-message connection sits in ``connect``
    for its full timeout — cannot delay other timers, matching the old
    one-thread-per-``threading.Timer`` semantics.
    """

    def __init__(self, obs=None) -> None:
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._cond = threading.Condition()
        self._heap: "list[tuple[float, int, _TimerEntry]]" = []
        self._tie = itertools.count()
        self._stopped = False
        self._thread: "Optional[threading.Thread]" = None

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> TimerHandle:
        entry = _TimerEntry(callback)
        deadline = time.monotonic() + max(0.0, delay)
        with self._cond:
            if self._stopped:
                return TimerHandle(lambda: None)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop, daemon=True,
                    name="tcp-timers",
                )
                self._thread.start()
            earlier = not self._heap or deadline < self._heap[0][0]
            heapq.heappush(self._heap, (deadline, next(self._tie), entry))
            if earlier:
                self._cond.notify()
        return TimerHandle(entry.cancel)

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._heap.clear()
            self._cond.notify()

    def _dispatch_loop(self) -> None:
        while True:
            due: "list[_TimerEntry]" = []
            with self._cond:
                while True:
                    if self._stopped:
                        return
                    now = time.monotonic()
                    while self._heap and self._heap[0][0] <= now:
                        entry = heapq.heappop(self._heap)[2]
                        if not entry.cancelled:
                            due.append(entry)
                    if due:
                        break
                    if self._heap:
                        self._cond.wait(self._heap[0][0] - now)
                    else:
                        self._cond.wait()
            threading.Thread(target=self._fire, args=(due,),
                             daemon=True).start()

    def _fire(self, entries: "list[_TimerEntry]") -> None:
        for entry in entries:
            if entry.cancelled:
                continue
            try:
                entry.callback()
            except Exception:  # noqa: BLE001 - a timer bug must not kill the wheel
                self._obs.handler_error("", "timer")


class _TimerEntry:
    __slots__ = ("callback", "cancelled")

    def __init__(self, callback: Callable[[], None]) -> None:
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _PeerChannel:
    """One pooled connection to a remote peer, fed by a writer thread.

    Senders only touch the queue; all socket work (connect, batched
    ``sendall``, teardown on error) happens on the writer thread, so a
    slow or dead peer never blocks protocol threads.
    """

    def __init__(self, network: TcpNetwork, recipient: str) -> None:
        self._network = network
        self._recipient = recipient
        self._queue: "collections.deque[tuple[str, bytes]]" = collections.deque()
        self._cond = threading.Condition()
        self._sock: "Optional[socket.socket]" = None
        self._ever_connected = False
        self._next_attempt = 0.0
        self._stopped = False
        self._thread = threading.Thread(
            target=self._writer_loop, daemon=True,
            name=f"tcp-writer-{recipient}",
        )
        self._thread.start()

    def enqueue(self, sender: str, line: bytes) -> None:
        with self._cond:
            if self._stopped:
                return
            self._queue.append((sender, line))
            self._cond.notify()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._queue.clear()
            self._cond.notify()
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._thread.join(timeout=1.0)

    # -- writer thread --------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                batch = list(self._queue)
                self._queue.clear()
            self._flush(batch)

    def _flush(self, batch: "list[tuple[str, bytes]]") -> None:
        obs = self._network._obs
        first_sender = batch[0][0]
        if obs.enabled and len(batch) > 1:
            obs.frames_coalesced(first_sender, self._recipient, len(batch))
        sock = self._sock
        prefix = b""
        if sock is None:
            sock = self._connect(first_sender)
            if sock is None:
                self._drop_batch(batch)
                return
            # Fresh connection: lead with the codec preamble (empty for
            # JSON) in the same sendall as the first batch.
            prefix = self._network._encoder.preamble
        elif obs.enabled:
            obs.connection_reused(first_sender, self._recipient)
        try:
            sock.sendall(prefix + b"".join(line for _, line in batch))
        except OSError:
            # Broken connection: this batch is lost (the reliable layer
            # retransmits); the next batch triggers a reconnect.
            self._teardown()
            self._drop_batch(batch)
            return
        if obs.enabled:
            for sender, line in batch:
                obs.raw_send(sender, self._recipient, len(line), ok=True)

    def _connect(self, sender: str) -> "Optional[socket.socket]":
        network = self._network
        now = network.now()
        if now < self._next_attempt:
            return None
        try:
            host, port = network.address_of(self._recipient)
            sock = socket.create_connection(
                (host, port), timeout=network._connect_timeout
            )
        except (TransportError, OSError):
            self._next_attempt = network.now() + RECONNECT_BACKOFF
            if network._obs.enabled:
                network._obs.connection_failed(sender, self._recipient)
            return None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        if network._obs.enabled:
            network._obs.connection_opened(sender, self._recipient,
                                           reconnect=self._ever_connected)
        self._ever_connected = True
        return sock

    def _teardown(self) -> None:
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _drop_batch(self, batch: "list[tuple[str, bytes]]") -> None:
        if self._network._obs.enabled:
            for sender, line in batch:
                self._network._obs.raw_send(sender, self._recipient,
                                            len(line), ok=False)


class _Listener:
    """Accept-loop thread delivering decoded envelopes to a handler."""

    def __init__(self, host: str, handler: MessageHandler,
                 port: int = 0,
                 obs: "Instrumentation | None" = None,
                 party_id: str = "",
                 max_frame: int = MAX_FRAME) -> None:
        self.handler = handler
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._party = party_id
        self._max_frame = max_frame
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(64)
        self.port = self._server.getsockname()[1]
        self._running = False
        self._thread: "Optional[threading.Thread]" = None
        # Live accepted connections: pooled peers hold theirs open
        # indefinitely, so stop() must close them explicitly or they keep
        # the port busy and a restarted listener cannot rebind it.
        self._conns: "set[socket.socket]" = set()
        self._conns_lock = threading.Lock()

    def start(self) -> None:
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        # shutdown() before close(): merely closing the fd does not wake
        # threads blocked in accept()/recv(), and their in-kernel
        # reference would keep the port busy, so a restarted listener
        # could not rebind it.
        for sock in [self._server] + self._drain_conns():
            for call in (lambda: sock.shutdown(socket.SHUT_RDWR),
                         sock.close):
                try:
                    call()
                except OSError:
                    pass

    def _drain_conns(self) -> "list[socket.socket]":
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        return conns

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with self._conns_lock:
                if not self._running:
                    conn.close()
                    continue
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder(max_frame=self._max_frame)
        try:
            with conn:
                # Pooled peers hold their connection open indefinitely and
                # may be idle between coordination runs, so reads must not
                # time out; a vanished peer surfaces as EOF/ECONNRESET.
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    decoder.feed(chunk)
                    try:
                        while True:
                            frame = decoder.next_frame()
                            if frame is None:
                                break
                            self._dispatch(decoder, frame)
                    except FrameError as exc:
                        # Fatal framing violation (unknown preamble,
                        # oversized frame): count it and drop the
                        # connection rather than buffering garbage.
                        reason = ("oversized"
                                  if isinstance(exc, FrameTooLargeError)
                                  else "framing")
                        self._obs.malformed_frame(self._party, reason)
                        return
        except OSError:
            return
        finally:
            with self._conns_lock:
                self._conns.discard(conn)

    def _dispatch(self, decoder: FrameDecoder, frame: bytes) -> None:
        # Intruders may inject garbage; a frame that fails to decode is
        # counted and recorded (never silently swallowed) but does not
        # kill an otherwise healthy connection.
        obs = self._obs
        started = time.perf_counter() if obs.enabled else 0.0
        try:
            data = decoder.decode(frame)
        except WireError:
            obs.malformed_frame(self._party, "decode")
            return
        if obs.enabled:
            obs.frame_decoded(decoder.codec or CODEC_JSON, len(frame),
                              time.perf_counter() - started)
        try:
            envelope = Envelope.from_dict(data)
        except (ValueError, KeyError, TypeError, AttributeError):
            obs.malformed_frame(self._party, "bad-envelope")
            return
        try:
            self.handler(envelope)
        except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
            obs.handler_error(self._party, "dispatch")
            return
