"""TCP transport (standard-library sockets).

The original prototype used Java RMI between organisations; this module is
the real-network counterpart of the simulated substrate: one listener
socket per registered party, canonical-JSON-lines framing, one short-lived
connection per message.  Sends are best-effort — connection failures drop
the message and the reliable layer's retransmission recovers, exactly as
over the simulated lossy network.
"""

from __future__ import annotations

import random
import socket
import threading
from typing import Callable, Optional

from repro.errors import TransportError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.transport.base import Envelope, MessageHandler, Network, TimerHandle
from repro.util.clocks import MonotonicClock
from repro.util.encoding import canonical_bytes, from_canonical_bytes

_MAX_LINE = 16 * 1024 * 1024


class TcpNetwork(Network):
    """Real-socket network hosting any number of party endpoints.

    In a single process it is self-contained: ``register`` assigns an
    ephemeral port and records it in the address directory.  For
    multi-process deployments, pre-populate the directory with
    ``add_remote_party``.
    """

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 2.0,
                 obs: "Instrumentation | None" = None,
                 drop_probability: float = 0.0,
                 drop_seed: "int | None" = None) -> None:
        self._host = host
        self._connect_timeout = connect_timeout
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        # Optional fault injection: drop outbound data frames before they
        # reach the socket, so demos and tests can exercise the reliable
        # layer's retransmission over real sockets deterministically.
        self._drop_probability = drop_probability
        self._drop_rng = random.Random(drop_seed)
        self._directory: "dict[str, tuple[str, int]]" = {}
        self._listeners: "dict[str, _Listener]" = {}
        self._lock = threading.Lock()
        # Retransmission pacing and timeouts are interval arithmetic, so
        # the network clock must not step backwards under NTP corrections.
        self._clock = MonotonicClock()
        self._closed = False

    def add_remote_party(self, party_id: str, host: str, port: int) -> None:
        """Record the address of a party hosted by another process."""
        with self._lock:
            self._directory[party_id] = (host, port)

    def address_of(self, party_id: str) -> "tuple[str, int]":
        with self._lock:
            address = self._directory.get(party_id)
        if address is None:
            raise TransportError(f"no known address for party {party_id!r}")
        return address

    def register(self, party_id: str, handler: MessageHandler) -> None:
        with self._lock:
            if self._closed:
                raise TransportError("network is closed")
            existing = self._listeners.get(party_id)
            if existing is not None:
                existing.handler = handler
                return
            listener = _Listener(self._host, handler)
            listener.start()
            self._listeners[party_id] = listener
            self._directory[party_id] = (self._host, listener.port)

    def send(self, envelope: Envelope) -> None:
        try:
            host, port = self.address_of(envelope.recipient)
        except TransportError:
            return  # unknown party: drop, retransmission may find it later
        if (self._drop_probability > 0.0
                and self._drop_rng.random() < self._drop_probability):
            if self._obs.enabled:
                self._obs.raw_send(envelope.sender, envelope.recipient,
                                   0, ok=False)
            return  # injected loss: the reliable layer retransmits
        line = canonical_bytes(envelope.to_dict()) + b"\n"
        try:
            with socket.create_connection((host, port), timeout=self._connect_timeout) as conn:
                conn.sendall(line)
        except OSError:
            if self._obs.enabled:
                self._obs.raw_send(envelope.sender, envelope.recipient,
                                   len(line), ok=False)
            return  # best-effort: the reliable layer retransmits
        if self._obs.enabled:
            self._obs.raw_send(envelope.sender, envelope.recipient,
                               len(line), ok=True)

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        timer = threading.Timer(delay, callback)
        timer.daemon = True
        timer.start()
        return TimerHandle(timer.cancel)

    def now(self) -> float:
        return self._clock.now()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            listeners = list(self._listeners.values())
            self._listeners.clear()
        for listener in listeners:
            listener.stop()


class _Listener:
    """Accept-loop thread delivering decoded envelopes to a handler."""

    def __init__(self, host: str, handler: MessageHandler) -> None:
        self.handler = handler
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, 0))
        self._server.listen(64)
        self.port = self._server.getsockname()[1]
        self._running = False
        self._thread: "Optional[threading.Thread]" = None

    def start(self) -> None:
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        try:
            self._server.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        buffer = b""
        try:
            with conn:
                conn.settimeout(5.0)
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    buffer += chunk
                    if len(buffer) > _MAX_LINE:
                        return
                    while b"\n" in buffer:
                        line, buffer = buffer.split(b"\n", 1)
                        if line:
                            self._dispatch(line)
        except OSError:
            return

    def _dispatch(self, line: bytes) -> None:
        try:
            envelope = Envelope.from_dict(from_canonical_bytes(line))
        except (ValueError, KeyError, TypeError):
            return  # malformed frame: ignore (intruders may inject garbage)
        try:
            self.handler(envelope)
        except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
            return
