"""Communication substrate: raw networks and the once-only reliable layer."""

from repro.transport.base import (
    Envelope,
    MessageHandler,
    Network,
    NetworkFilter,
    TimerHandle,
)
from repro.transport.inmemory import LinkProfile, NetworkStats, SimNetwork
from repro.transport.mom import BrokeredSimNetwork
from repro.transport.reliable import ReliableEndpoint
from repro.transport.tcp import SelectorReactorNetwork, TcpNetwork

__all__ = [
    "Envelope",
    "MessageHandler",
    "Network",
    "NetworkFilter",
    "TimerHandle",
    "LinkProfile",
    "NetworkStats",
    "SimNetwork",
    "BrokeredSimNetwork",
    "ReliableEndpoint",
    "SelectorReactorNetwork",
    "TcpNetwork",
]
