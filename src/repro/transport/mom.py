"""Message-oriented (store-and-forward) transport (section 7).

"To support loosely-coupled inter-organisational interaction, we intend
to provide implementations of the middleware that are based on Message
Oriented Middleware and on the use of SMTP and HTTP/SOAP for message
delivery."

:class:`BrokeredSimNetwork` realises that style over the deterministic
simulator: every message is stored in a broker mailbox and delivered when
the recipient is *attached*; a detached (offline) organisation simply
accumulates mail and drains it on re-attachment.  All of the simulator's
fault injection (loss, duplication, partitions between an endpoint and
the broker) still applies to the path into the broker.

Because the broker itself is durable, endpoints can run with
retransmission disabled — the paper's eventual-delivery assumption is met
by the broker instead of by sender retries — but the default reliable
layer also works unchanged (duplicates are suppressed as usual).
"""

from __future__ import annotations

from typing import Optional

from repro.storage.backends import RecordStore
from repro.transport.base import Envelope
from repro.transport.inmemory import LinkProfile, SimNetwork


class BrokeredSimNetwork(SimNetwork):
    """A simulated network where all traffic flows via broker mailboxes."""

    def __init__(self, seed: "int | str" = 0,
                 default_profile: "LinkProfile | None" = None,
                 delivery_interval: float = 0.02,
                 mailbox_store_factory: "Optional[callable]" = None) -> None:
        super().__init__(seed=seed, default_profile=default_profile)
        self._delivery_interval = delivery_interval
        self._mailboxes: "dict[str, list[Envelope]]" = {}
        self._detached: "set[str]" = set()
        self._drain_armed: "set[str]" = set()
        # Optional durability: a RecordStore per mailbox mirrors queued
        # messages so a "broker restart" can be simulated in tests.
        self._store_factory = mailbox_store_factory
        self._stores: "dict[str, RecordStore]" = {}

    # ------------------------------------------------------------------
    # attachment control (the loose coupling)
    # ------------------------------------------------------------------

    def detach(self, party_id: str) -> None:
        """Take a party offline; its mail accumulates at the broker."""
        self._detached.add(party_id)

    def attach(self, party_id: str) -> None:
        """Bring a party back online and drain its mailbox."""
        self._detached.discard(party_id)
        self._arm_drain(party_id)

    def is_attached(self, party_id: str) -> bool:
        return party_id not in self._detached

    def mailbox_depth(self, party_id: str) -> int:
        return len(self._mailboxes.get(party_id, []))

    # ------------------------------------------------------------------
    # delivery override
    # ------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        # The base-class checks model the path from the sender to the
        # broker: a partitioned or crashed *sender-side* hop loses the
        # message before it is stored.
        if self._partitioned(envelope.sender, envelope.recipient):
            self.stats.partition_blocked += 1
            return
        mailbox = self._mailboxes.setdefault(envelope.recipient, [])
        mailbox.append(envelope)
        self._persist(envelope)
        self._arm_drain(envelope.recipient)

    def _arm_drain(self, party_id: str) -> None:
        if party_id in self._drain_armed or party_id in self._detached:
            return
        if not self._mailboxes.get(party_id):
            return
        self._drain_armed.add(party_id)
        self.schedule(self._delivery_interval,
                      lambda: self._drain(party_id))

    def _drain(self, party_id: str) -> None:
        self._drain_armed.discard(party_id)
        if party_id in self._detached:
            return
        if self.is_crashed(party_id):
            # A crashed endpoint keeps its mail queued (unlike the direct
            # network, where in-flight messages to a crashed node are
            # lost) — the essence of store-and-forward.
            self._arm_later(party_id)
            return
        handler = self._handlers.get(party_id)
        mailbox = self._mailboxes.get(party_id, [])
        while mailbox:
            envelope = mailbox.pop(0)
            if handler is not None:
                self.stats.delivered += 1
                handler(envelope)

    def _arm_later(self, party_id: str) -> None:
        if party_id in self._drain_armed:
            return
        self._drain_armed.add(party_id)
        self.schedule(self._delivery_interval * 5,
                      lambda: self._drain(party_id))

    def _persist(self, envelope: Envelope) -> None:
        if self._store_factory is None:
            return
        store = self._stores.get(envelope.recipient)
        if store is None:
            store = self._store_factory(envelope.recipient)
            self._stores[envelope.recipient] = store
        store.append(envelope.to_dict())
