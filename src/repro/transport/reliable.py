"""Eventual once-only delivery layer.

The coordination protocols assume eventual once-only delivery
(section 4.2).  :class:`ReliableEndpoint` masks an unreliable
:class:`~repro.transport.base.Network` — lossy, duplicating, temporarily
partitioned — behind exactly those semantics:

* *eventual*: unacknowledged messages are retransmitted on a timer until
  the recipient acknowledges them (or an optional retry bound is hit);
* *once-only*: received data messages are de-duplicated by message id
  before being passed to the upper layer.

Acknowledgements are idempotent, so lost acks simply cause harmless
retransmissions.

The endpoint is thread-safe: over a real network (``TcpNetwork``) it is
driven concurrently by listener threads (inbound data and acks) and
``threading.Timer`` callbacks (retransmissions), so all bookkeeping —
the outstanding map, the duplicate-suppression window, the counters —
is guarded by one lock.  Network I/O and user callbacks run outside the
lock; a retransmission and an ack racing for the same message id resolve
atomically, so the failure handler and the ack path can never both claim
it.

Duplicate suppression is bounded: ids are tracked per sender instance
(the ``{party}/{instance}/{seq}`` id structure) in a sliding window, so
long-running deployments do not accumulate one set entry per message
ever received.
"""

from __future__ import annotations

import collections
import itertools
import secrets
import threading
from typing import Callable, Optional

from repro.errors import DeliveryError
from repro.obs.hooks import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    approx_size,
)
from repro.transport.base import Envelope, Network, TimerHandle

DATA = "data"
ACK = "ack"

#: Per-sender-instance duplicate-suppression window.  A duplicate can only
#: arrive while its original is still being retransmitted, so the window
#: just needs to cover the retransmission horizon; 1024 ids is orders of
#: magnitude beyond any plausible in-flight count.
DEFAULT_DEDUP_WINDOW = 1024

#: Bound on tracked sender instances.  A new instance appears only when a
#: peer endpoint restarts; the least-recently-active instance is evicted.
DEFAULT_DEDUP_SOURCES = 256


class _DedupWindow:
    """Bounded once-only filter over ``{party}/{instance}/{seq}`` ids.

    Ids are bucketed by their ``{party}/{instance}`` prefix and each
    bucket keeps only the most recent *window* ids (insertion order ==
    seq order for a well-behaved sender, and approximately so under
    reordering, which is all duplicate suppression needs).  Buckets
    themselves are LRU-bounded so restarted peers do not leak.
    """

    __slots__ = ("_window", "_max_sources", "_sources")

    def __init__(self, window: int = DEFAULT_DEDUP_WINDOW,
                 max_sources: int = DEFAULT_DEDUP_SOURCES) -> None:
        self._window = max(1, window)
        self._max_sources = max(1, max_sources)
        # prefix -> (id set, insertion-ordered deque); dict order is the
        # LRU order (moved to the end on every touch).
        self._sources: "collections.OrderedDict[str, tuple[set, collections.deque]]" = (
            collections.OrderedDict()
        )

    def seen_before(self, msg_id: str) -> bool:
        """Record *msg_id*; return True when it was already recorded."""
        prefix = msg_id.rpartition("/")[0]
        bucket = self._sources.get(prefix)
        if bucket is None:
            bucket = (set(), collections.deque())
            self._sources[prefix] = bucket
            while len(self._sources) > self._max_sources:
                self._sources.popitem(last=False)
        else:
            self._sources.move_to_end(prefix)
        ids, order = bucket
        if msg_id in ids:
            return True
        ids.add(msg_id)
        order.append(msg_id)
        while len(order) > self._window:
            ids.discard(order.popleft())
        return False

    def __len__(self) -> int:
        return sum(len(ids) for ids, _ in self._sources.values())

    @property
    def source_count(self) -> int:
        return len(self._sources)


class ReliableEndpoint:
    """One party's reliable attachment point on a raw network."""

    def __init__(self, party_id: str, network: Network,
                 retransmit_interval: float = 0.05,
                 max_retries: "int | None" = None,
                 backoff_factor: float = 1.5,
                 max_interval: float = 2.0,
                 dedup_window: int = DEFAULT_DEDUP_WINDOW,
                 obs: "Instrumentation | None" = None) -> None:
        self.party_id = party_id
        self._network = network
        self._interval = retransmit_interval
        self._max_retries = max_retries
        self._backoff = backoff_factor
        self._max_interval = max_interval
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._handler: "Optional[Callable[[str, dict], None]]" = None
        self._failure_handler: "Optional[Callable[[str, dict, DeliveryError], None]]" = None
        # The instance tag keeps message ids unique across process
        # restarts: a rebuilt endpoint must not reuse ids its peers have
        # already recorded in their duplicate-suppression windows.
        self._instance = secrets.token_hex(4)
        self._seq = itertools.count(1)
        # Single-slot (payload, wrapper) memo backing _wrap(); races only
        # cost a memo miss, never correctness.
        self._wrap_memo: "Optional[tuple]" = None
        # Guards _outstanding, _delivered, counters and _stopped; timer
        # callbacks and listener threads all land here concurrently.
        # Reentrant because a failure handler may itself call send().
        self._lock = threading.RLock()
        self._outstanding: "dict[str, _Pending]" = {}
        self._delivered = _DedupWindow(window=dedup_window)
        self._stopped = False
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.acks_received = 0
        network.register(party_id, self._on_raw_message)

    def on_message(self, handler: "Callable[[str, dict], None]") -> None:
        """Set the upper-layer handler: ``handler(sender, payload)``."""
        self._handler = handler

    def on_delivery_failure(self,
                            handler: "Callable[[str, dict, DeliveryError], None]") -> None:
        """Handler invoked when a bounded-retry send is abandoned."""
        self._failure_handler = handler

    def send(self, recipient: str, payload: dict) -> str:
        """Reliably send *payload*; returns the message id."""
        msg_id = f"{self.party_id}/{self._instance}/{next(self._seq)}"
        envelope = Envelope(
            sender=self.party_id,
            recipient=recipient,
            payload=self._wrap(payload),
            msg_id=msg_id,
        )
        pending = _Pending(envelope=envelope, interval=self._interval)
        with self._lock:
            if self._stopped:
                raise DeliveryError(f"{self.party_id}: endpoint is stopped")
            self._outstanding[msg_id] = pending
        # Socket work happens outside the lock: a slow connect must not
        # stall the ack path or other senders.
        sent_size = self._network.send(envelope)
        with self._lock:
            # The ack may already have arrived (loopback is fast); only
            # arm the retransmit timer while the send is still open.
            if msg_id in self._outstanding and not self._stopped:
                self._arm_retransmit(pending)
            depth = len(self._outstanding)
        if self._obs.enabled:
            if sent_size is None:
                sent_size = approx_size(envelope.to_dict())
            self._obs.message_sent(self.party_id, recipient, sent_size)
            self._obs.queue_depth(self.party_id, depth)
            # Bind the transport message id to the causal trace carried in
            # the payload so retransmission/duplicate events (which only
            # see msg_id) can be attributed to a coordination run.
            trace_ctx = payload.get("trace_ctx")
            if isinstance(trace_ctx, dict) and trace_ctx.get("trace_id"):
                self._obs.send_traced(self.party_id, recipient, msg_id,
                                      str(trace_ctx["trace_id"]))
        return msg_id

    def _wrap(self, payload: dict) -> dict:
        """The DATA wrapper for *payload*, memoised by identity.

        A protocol fan-out calls ``send`` once per peer with the *same*
        payload dict; reusing one wrapper object across those calls lets
        the transport's encode-once path recognise the broadcast and
        serialise the payload a single time (the wrapper is never
        mutated after construction).
        """
        memo = self._wrap_memo
        if memo is not None and memo[0] is payload:
            return memo[1]
        wrapper = {"type": DATA, "data": payload}
        self._wrap_memo = (payload, wrapper)
        return wrapper

    def outstanding_count(self) -> int:
        with self._lock:
            return len(self._outstanding)

    def dedup_entries(self) -> int:
        """Number of ids currently held for duplicate suppression."""
        with self._lock:
            return len(self._delivered)

    def stop(self) -> None:
        """Cancel all timers; used at shutdown and in crash simulation."""
        with self._lock:
            self._stopped = True
            pendings = list(self._outstanding.values())
            self._outstanding.clear()
        for pending in pendings:
            if pending.timer is not None:
                pending.timer.cancel()

    def restart(self) -> None:
        """Resume after a simulated crash (outstanding sends were lost)."""
        with self._lock:
            self._stopped = False

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _arm_retransmit(self, pending: "_Pending") -> None:
        pending.timer = self._network.schedule(
            pending.interval, lambda: self._retransmit(pending)
        )

    def _retransmit(self, pending: "_Pending") -> None:
        msg_id = pending.envelope.msg_id
        give_up = False
        with self._lock:
            # Claim the message atomically: an ack racing this callback
            # either pops it first (we bail out here) or loses and is a
            # harmless no-op — never a KeyError or a double fire.
            if self._stopped or self._outstanding.get(msg_id) is not pending:
                return
            if (self._max_retries is not None
                    and pending.attempts >= self._max_retries):
                del self._outstanding[msg_id]
                give_up = True
            else:
                pending.attempts += 1
                self.retransmissions += 1
            depth = len(self._outstanding)
        if give_up:
            if self._obs.enabled:
                self._obs.retry_exhausted(
                    self.party_id, pending.envelope.recipient, msg_id,
                    pending.attempts,
                )
                self._obs.queue_depth(self.party_id, depth)
            error = DeliveryError(
                f"{self.party_id}: gave up sending {msg_id} to "
                f"{pending.envelope.recipient} after {pending.attempts} retries"
            )
            if self._failure_handler is not None:
                self._failure_handler(
                    pending.envelope.recipient, pending.envelope.payload["data"], error
                )
            return
        if self._obs.enabled:
            self._obs.retransmission(
                self.party_id, pending.envelope.recipient, msg_id,
                pending.attempts,
            )
        self._network.send(pending.envelope)
        with self._lock:
            if self._stopped or self._outstanding.get(msg_id) is not pending:
                return  # acked while the retransmission was on the wire
            pending.interval = min(pending.interval * self._backoff,
                                   self._max_interval)
            self._arm_retransmit(pending)

    def _on_raw_message(self, envelope: Envelope) -> None:
        with self._lock:
            if self._stopped:
                return
        kind = envelope.payload.get("type")
        if kind == ACK:
            self._handle_ack(envelope.payload.get("ack_of", ""))
        elif kind == DATA:
            self._handle_data(envelope)

    def _handle_ack(self, msg_id: str) -> None:
        with self._lock:
            pending = self._outstanding.pop(msg_id, None)
            if pending is None:
                return
            self.acks_received += 1
            depth = len(self._outstanding)
        if pending.timer is not None:
            pending.timer.cancel()
        if self._obs.enabled:
            self._obs.ack_received(self.party_id, msg_id)
            self._obs.queue_depth(self.party_id, depth)

    def _handle_data(self, envelope: Envelope) -> None:
        # Always (re-)acknowledge: the sender may have missed a prior ack.
        ack = Envelope(
            sender=self.party_id,
            recipient=envelope.sender,
            payload={"type": ACK, "ack_of": envelope.msg_id},
        )
        self._network.send(ack)
        with self._lock:
            duplicate = self._delivered.seen_before(envelope.msg_id)
            if duplicate:
                self.duplicates_suppressed += 1
        if duplicate:
            if self._obs.enabled:
                self._obs.duplicate_suppressed(self.party_id, envelope.sender,
                                               envelope.msg_id)
            return
        if self._handler is not None:
            self._handler(envelope.sender, envelope.payload["data"])


class _Pending:
    __slots__ = ("envelope", "interval", "attempts", "timer")

    def __init__(self, envelope: Envelope, interval: float) -> None:
        self.envelope = envelope
        self.interval = interval
        self.attempts = 0
        self.timer: "TimerHandle | None" = None
