"""Eventual once-only delivery layer.

The coordination protocols assume eventual once-only delivery
(section 4.2).  :class:`ReliableEndpoint` masks an unreliable
:class:`~repro.transport.base.Network` — lossy, duplicating, temporarily
partitioned — behind exactly those semantics:

* *eventual*: unacknowledged messages are retransmitted on a timer until
  the recipient acknowledges them (or an optional retry bound is hit);
* *once-only*: received data messages are de-duplicated by message id
  before being passed to the upper layer.

Acknowledgements are idempotent, so lost acks simply cause harmless
retransmissions.
"""

from __future__ import annotations

import itertools
import secrets
from typing import Callable, Optional

from repro.errors import DeliveryError
from repro.obs.hooks import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    approx_size,
)
from repro.transport.base import Envelope, Network, TimerHandle

DATA = "data"
ACK = "ack"


class ReliableEndpoint:
    """One party's reliable attachment point on a raw network."""

    def __init__(self, party_id: str, network: Network,
                 retransmit_interval: float = 0.05,
                 max_retries: "int | None" = None,
                 backoff_factor: float = 1.5,
                 max_interval: float = 2.0,
                 obs: "Instrumentation | None" = None) -> None:
        self.party_id = party_id
        self._network = network
        self._interval = retransmit_interval
        self._max_retries = max_retries
        self._backoff = backoff_factor
        self._max_interval = max_interval
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._handler: "Optional[Callable[[str, dict], None]]" = None
        self._failure_handler: "Optional[Callable[[str, dict, DeliveryError], None]]" = None
        # The instance tag keeps message ids unique across process
        # restarts: a rebuilt endpoint must not reuse ids its peers have
        # already recorded in their duplicate-suppression sets.
        self._instance = secrets.token_hex(4)
        self._seq = itertools.count(1)
        self._outstanding: "dict[str, _Pending]" = {}
        self._delivered_ids: "set[str]" = set()
        self._stopped = False
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.acks_received = 0
        network.register(party_id, self._on_raw_message)

    def on_message(self, handler: "Callable[[str, dict], None]") -> None:
        """Set the upper-layer handler: ``handler(sender, payload)``."""
        self._handler = handler

    def on_delivery_failure(self,
                            handler: "Callable[[str, dict, DeliveryError], None]") -> None:
        """Handler invoked when a bounded-retry send is abandoned."""
        self._failure_handler = handler

    def send(self, recipient: str, payload: dict) -> str:
        """Reliably send *payload*; returns the message id."""
        if self._stopped:
            raise DeliveryError(f"{self.party_id}: endpoint is stopped")
        msg_id = f"{self.party_id}/{self._instance}/{next(self._seq)}"
        envelope = Envelope(
            sender=self.party_id,
            recipient=recipient,
            payload={"type": DATA, "data": payload},
            msg_id=msg_id,
        )
        pending = _Pending(envelope=envelope, interval=self._interval)
        self._outstanding[msg_id] = pending
        self._network.send(envelope)
        self._arm_retransmit(pending)
        if self._obs.enabled:
            self._obs.message_sent(self.party_id, recipient,
                                   approx_size(envelope.to_dict()))
            self._obs.queue_depth(self.party_id, len(self._outstanding))
            # Bind the transport message id to the causal trace carried in
            # the payload so retransmission/duplicate events (which only
            # see msg_id) can be attributed to a coordination run.
            trace_ctx = payload.get("trace_ctx")
            if isinstance(trace_ctx, dict) and trace_ctx.get("trace_id"):
                self._obs.send_traced(self.party_id, recipient, msg_id,
                                      str(trace_ctx["trace_id"]))
        return msg_id

    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def stop(self) -> None:
        """Cancel all timers; used at shutdown and in crash simulation."""
        self._stopped = True
        for pending in self._outstanding.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._outstanding.clear()

    def restart(self) -> None:
        """Resume after a simulated crash (outstanding sends were lost)."""
        self._stopped = False

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _arm_retransmit(self, pending: "_Pending") -> None:
        pending.timer = self._network.schedule(
            pending.interval, lambda: self._retransmit(pending)
        )

    def _retransmit(self, pending: "_Pending") -> None:
        msg_id = pending.envelope.msg_id
        if self._stopped or msg_id not in self._outstanding:
            return
        if self._max_retries is not None and pending.attempts >= self._max_retries:
            del self._outstanding[msg_id]
            if self._obs.enabled:
                self._obs.retry_exhausted(
                    self.party_id, pending.envelope.recipient, msg_id,
                    pending.attempts,
                )
                self._obs.queue_depth(self.party_id, len(self._outstanding))
            error = DeliveryError(
                f"{self.party_id}: gave up sending {msg_id} to "
                f"{pending.envelope.recipient} after {pending.attempts} retries"
            )
            if self._failure_handler is not None:
                self._failure_handler(
                    pending.envelope.recipient, pending.envelope.payload["data"], error
                )
            return
        pending.attempts += 1
        self.retransmissions += 1
        if self._obs.enabled:
            self._obs.retransmission(
                self.party_id, pending.envelope.recipient, msg_id,
                pending.attempts,
            )
        self._network.send(pending.envelope)
        pending.interval = min(pending.interval * self._backoff, self._max_interval)
        self._arm_retransmit(pending)

    def _on_raw_message(self, envelope: Envelope) -> None:
        if self._stopped:
            return
        kind = envelope.payload.get("type")
        if kind == ACK:
            self._handle_ack(envelope.payload.get("ack_of", ""))
        elif kind == DATA:
            self._handle_data(envelope)

    def _handle_ack(self, msg_id: str) -> None:
        pending = self._outstanding.pop(msg_id, None)
        if pending is None:
            return
        self.acks_received += 1
        if pending.timer is not None:
            pending.timer.cancel()
        if self._obs.enabled:
            self._obs.ack_received(self.party_id, msg_id)
            self._obs.queue_depth(self.party_id, len(self._outstanding))

    def _handle_data(self, envelope: Envelope) -> None:
        # Always (re-)acknowledge: the sender may have missed a prior ack.
        ack = Envelope(
            sender=self.party_id,
            recipient=envelope.sender,
            payload={"type": ACK, "ack_of": envelope.msg_id},
        )
        self._network.send(ack)
        if envelope.msg_id in self._delivered_ids:
            self.duplicates_suppressed += 1
            if self._obs.enabled:
                self._obs.duplicate_suppressed(self.party_id, envelope.sender,
                                               envelope.msg_id)
            return
        self._delivered_ids.add(envelope.msg_id)
        if self._handler is not None:
            self._handler(envelope.sender, envelope.payload["data"])


class _Pending:
    __slots__ = ("envelope", "interval", "attempts", "timer")

    def __init__(self, envelope: Envelope, interval: float) -> None:
        self.envelope = envelope
        self.interval = interval
        self.attempts = 0
        self.timer: "TimerHandle | None" = None
