"""Transport abstractions.

Section 4.2 assumes "the communications infrastructure provides eventual,
once-only message delivery.  If the underlying communications system does
not support these semantics then the coordination middleware masks this
and presents the assumed semantics."

We model that split explicitly:

* a :class:`Network` is a *raw* channel that may delay, drop, duplicate or
  reorder messages and may be partitioned (the simulated network), or a
  best-effort real channel (TCP);
* :mod:`repro.transport.reliable` layers retransmission and duplicate
  suppression on top of any :class:`Network` to present exactly the
  eventual once-only semantics the protocol engines assume.

Networks also expose a timer facility (``schedule``) so that the reliable
layer and protocol timeouts work identically on virtual and real time.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

_envelope_counter = itertools.count(1)
_envelope_lock = threading.Lock()


def _next_envelope_number() -> int:
    with _envelope_lock:
        return next(_envelope_counter)


@dataclass(frozen=True)
class Envelope:
    """One message in flight between two named parties."""

    sender: str
    recipient: str
    payload: dict
    msg_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.msg_id:
            object.__setattr__(
                self, "msg_id", f"{self.sender}:{_next_envelope_number()}"
            )

    def to_dict(self) -> dict:
        return {
            "sender": self.sender,
            "recipient": self.recipient,
            "payload": self.payload,
            "msg_id": self.msg_id,
        }

    @staticmethod
    def from_dict(data: dict) -> "Envelope":
        return Envelope(
            sender=str(data["sender"]),
            recipient=str(data["recipient"]),
            payload=dict(data["payload"]),
            msg_id=str(data["msg_id"]),
        )


MessageHandler = Callable[[Envelope], None]


class TimerHandle:
    """Cancellable handle for a scheduled callback."""

    def __init__(self, cancel: Callable[[], None]) -> None:
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class Network:
    """Raw message channel + timer service.

    Implementations: :class:`repro.transport.inmemory.SimNetwork` (virtual
    time, fault injection) and :class:`repro.transport.tcp.TcpNetwork`
    (real sockets, real time).
    """

    def register(self, party_id: str, handler: MessageHandler) -> None:
        """Attach the inbound-message handler for *party_id*."""
        raise NotImplementedError

    def send(self, envelope: Envelope) -> "int | None":
        """Best-effort transmission; may drop/duplicate/delay.

        Returns the approximate on-the-wire size in bytes when the
        implementation knows it (it usually sizes or serialises the
        envelope anyway), so instrumentation above need not re-walk the
        payload.  ``None`` means unknown.
        """
        raise NotImplementedError

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run *callback* after *delay* seconds (virtual or real)."""
        raise NotImplementedError

    def now(self) -> float:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (sockets, pooled connections,
        worker threads).  No-op for networks that hold none; must be
        idempotent."""


class NetworkFilter:
    """Hook for intruder / fault models to intercept raw traffic.

    ``on_send`` may return the envelope (possibly modified), a list of
    envelopes (inject/duplicate), or None (suppress).  The Dolev-Yao
    intruder in :mod:`repro.faults.intruder` is implemented as a filter.
    """

    def on_send(self, envelope: Envelope) -> "Envelope | list[Envelope] | None":
        return envelope


def normalise_filter_result(result: Any) -> "list[Envelope]":
    """Canonicalise a :class:`NetworkFilter` result into a list."""
    if result is None:
        return []
    if isinstance(result, Envelope):
        return [result]
    return list(result)
