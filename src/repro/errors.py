"""Exception hierarchy for the B2BObjects middleware.

Every error raised by the library derives from :class:`B2BError` so that
applications can catch middleware failures with a single ``except`` clause
while still being able to discriminate the individual failure classes the
paper distinguishes (validation failure, protocol subversion, evidence
tampering, transport faults, ...).
"""

from __future__ import annotations


class B2BError(Exception):
    """Base class for all middleware errors."""


class ConfigurationError(B2BError):
    """The middleware was wired together inconsistently."""


class CryptoError(B2BError):
    """Base class for failures in the cryptographic substrate."""


class KeyGenerationError(CryptoError):
    """A key pair could not be generated with the requested parameters."""


class SignatureError(CryptoError):
    """A signature failed verification or could not be produced."""


class CertificateError(CryptoError):
    """A certificate is invalid, expired, revoked or untrusted."""


class TimestampError(CryptoError):
    """A time-stamp token failed verification."""


class StorageError(B2BError):
    """Base class for persistence failures."""


class LogCorruptionError(StorageError):
    """A non-repudiation log failed its hash-chain integrity check."""


class CheckpointError(StorageError):
    """A checkpoint could not be stored or recovered."""


class TransportError(B2BError):
    """Base class for communication failures."""


class DeliveryError(TransportError):
    """A message could not be delivered within the configured bounds."""


class PartitionError(TransportError):
    """An endpoint is currently unreachable due to a network partition."""


class ProtocolError(B2BError):
    """Base class for coordination-protocol failures."""


class InvariantViolation(ProtocolError):
    """One of the ordered-state-transition invariants (section 4.2) failed.

    Invariant breaches are detected during a protocol run and lead to the
    invalidation of the proposed state transition, never to the
    installation of invalid state.
    """

    def __init__(self, invariant: int, detail: str) -> None:
        super().__init__(f"invariant {invariant} violated: {detail}")
        self.invariant = invariant
        self.detail = detail


class InconsistentMessageError(ProtocolError):
    """Signed and unsigned parts of a protocol message disagree (section 4.4)."""


class ReplayError(ProtocolError):
    """A message from a prior protocol run was replayed."""


class ValidationFailed(ProtocolError):
    """A proposed state transition was vetoed by one or more parties.

    Raised to the application by synchronous-mode ``leave``/``connect``
    calls when the coordination outcome is *invalid*.
    """

    def __init__(self, message: str, diagnostics: "list[str] | None" = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class ProtocolBlocked(ProtocolError):
    """A protocol run cannot make progress (a party stopped responding).

    The paper deliberately does not guarantee termination under
    misbehaviour; the middleware surfaces the blocked run together with
    the evidence needed for extra-protocol dispute resolution.
    """


class ConcurrencyError(ProtocolError):
    """A coordination request conflicts with an active protocol run."""


class PipelineSaturatedError(ProtocolError):
    """A proposal pipeline's local queue reached its configured bound.

    Raised by :meth:`~repro.protocol.pipeline.ProposalPipeline.submit`
    when ``max_depth`` updates are already queued, so a flooding caller
    (typically a gateway) gets explicit backpressure instead of
    unbounded memory growth.  The update was *not* enqueued; retrying
    after in-flight runs settle is safe.
    """


class MembershipError(ProtocolError):
    """A connection/disconnection request was malformed or illegitimate."""


class NotConnectedError(ProtocolError):
    """An operation requires the controller to be connected to a group."""


class MisbehaviourDetected(ProtocolError):
    """Provable misbehaviour by a named party was detected (section 4.4)."""

    def __init__(self, party: str, kind: str, detail: str = "") -> None:
        message = f"misbehaviour by {party}: {kind}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.party = party
        self.kind = kind
        self.detail = detail


class DisputeError(B2BError):
    """Extra-protocol arbitration could not reach a ruling."""


class GatewayError(B2BError):
    """Base class for front-door gateway admission failures.

    All gateway rejections are *pre-coordination*: the update never
    reached the proposal pipeline, so retrying later is always safe.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Hint, in seconds, for when a retry might be admitted.
        self.retry_after = retry_after


class RateLimitedError(GatewayError):
    """A client exhausted its token bucket; retry after the refill."""


class GatewayOverloadedError(GatewayError):
    """The admission queue is full; the request was shed (load leveling)."""


class CircuitOpenError(GatewayError):
    """The community's circuit breaker is open; the gateway fails fast."""


class ApplicationError(B2BError):
    """Base class for errors raised by the bundled example applications."""


class RuleViolation(ApplicationError):
    """An application-level validation rule rejected a state change."""
