"""Workload generators for the benchmark harness."""

from __future__ import annotations

from typing import Any, Iterator

from repro.crypto.prng import DeterministicRandomSource


def counter_states(count: int, payload_keys: int = 1,
                   payload_bytes: int = 16) -> "Iterator[dict]":
    """A sequence of distinct dict states of controlled size."""
    filler = "x" * payload_bytes
    for index in range(count):
        state: dict = {"counter": index + 1}
        for key in range(payload_keys):
            state[f"field{key}"] = f"{filler}{index}"
        yield state


def random_states(count: int, seed: "int | str" = 0,
                  key_space: int = 8,
                  payload_bytes: int = 16) -> "Iterator[dict]":
    """Seeded random dict states (distinct via a monotonic counter).

    The companion of :func:`counter_states` for workloads that should
    *vary with the seed*: each state carries one randomly chosen key
    with a random payload, drawn from a :class:`DeterministicRandomSource`
    — the same seed always yields the same sequence.
    """
    rng = DeterministicRandomSource(f"workload-states:{seed}")
    filler = "x" * payload_bytes
    for index in range(count):
        key = f"k{rng.random_below(key_space)}"
        yield {
            "counter": index + 1,
            key: f"{filler}{rng.random_below(1 << 16)}",
        }


def random_updates(count: int, seed: "int | str" = 0,
                   key_space: int = 8) -> "Iterator[dict]":
    """Random small key/value updates over a bounded key space."""
    rng = DeterministicRandomSource(f"workload:{seed}")
    for index in range(count):
        key = f"k{rng.random_below(key_space)}"
        yield {key: index + 1, "stamp": index}


def large_state(size_bytes: int, chunk: int = 64) -> dict:
    """A dict state of at least *size_bytes* canonical bytes."""
    from repro.util.encoding import canonical_bytes

    state: dict = {}
    index = 0
    while len(canonical_bytes(state)) < size_bytes:
        state[f"blob{index}"] = "v" * chunk
        index += 1
    return state


def order_edit_sequence(items: int) -> "Iterator[tuple[str, str, Any]]":
    """Alternating customer-add / supplier-price edits for an order.

    Yields ``(role, item_name, value)`` tuples: the customer orders item
    ``i`` then the supplier prices it, mirroring the Figure 7 workflow at
    scale.
    """
    for index in range(items):
        name = f"widget{index + 1}"
        yield ("customer", name, (index % 9) + 1)
        yield ("supplier", name, (index + 1) * 10)
