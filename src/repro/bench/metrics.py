"""Measurement helpers for the benchmark harness.

The statistics themselves live in :mod:`repro.obs.metrics` — the single
implementation shared by the observability registry and the benchmarks —
so quantiles reported by ``repro bench`` and ``repro obs-report`` can
never disagree.  This module keeps the benchmark-friendly recorder API
as a thin adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import exact_quantile, summarise
from repro.obs.report import format_table

__all__ = ["LatencyRecorder", "MessageCounter", "format_table"]


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies and reports summary statistics."""

    samples: "list[float]" = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        return exact_quantile(self.samples, fraction)

    def stddev(self) -> float:
        return summarise(self.samples)["stddev"]

    def summary(self) -> dict:
        return summarise(self.samples)


@dataclass
class MessageCounter:
    """Delta-counter over a simulated network's statistics."""

    baseline: dict = field(default_factory=dict)

    def start(self, network) -> None:
        self.baseline = network.stats.snapshot()

    def delta(self, network) -> dict:
        current = network.stats.snapshot()
        return {key: current[key] - self.baseline.get(key, 0)
                for key in current}
