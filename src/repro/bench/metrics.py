"""Measurement helpers for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies and reports summary statistics."""

    samples: "list[float]" = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1,
                    max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]

    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        )

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "stddev": self.stddev(),
        }


@dataclass
class MessageCounter:
    """Delta-counter over a simulated network's statistics."""

    baseline: dict = field(default_factory=dict)

    def start(self, network) -> None:
        self.baseline = network.stats.snapshot()

    def delta(self, network) -> dict:
        current = network.stats.snapshot()
        return {key: current[key] - self.baseline.get(key, 0)
                for key in current}


def format_table(headers: "list[str]", rows: "list[list]") -> str:
    """Render an aligned plain-text table (benchmark report output)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
