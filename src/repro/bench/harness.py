"""Reusable experiment drivers shared by the benchmark suite."""

from __future__ import annotations

from typing import Any, Iterable

from repro.bench.metrics import LatencyRecorder, MessageCounter
from repro.core.community import Community
from repro.core.object import DictB2BObject
from repro.core.runtime import SimRuntime
from repro.errors import ValidationFailed
from repro.obs.hooks import Instrumentation
from repro.transport.inmemory import LinkProfile


def build_community(n_parties: int, seed: "int | str" = 0,
                    profile: "LinkProfile | None" = None,
                    key_bits: int = 512,
                    obs: "Instrumentation | None" = None) -> Community:
    """A community of ``Org1..OrgN`` over a deterministic simulated net."""
    names = [f"Org{i + 1}" for i in range(n_parties)]
    runtime = SimRuntime(seed=seed, profile=profile or LinkProfile(latency=0.005))
    return Community(names, runtime=runtime, key_bits=key_bits, obs=obs)


def found_dict_object(community: Community, object_name: str = "shared",
                      members: "list[str] | None" = None):
    """Found a plain dict object among *members* (default: everyone)."""
    members = members if members is not None else community.names()
    objects = {name: DictB2BObject() for name in members}
    controllers = community.found_object(object_name, objects)
    return controllers, objects


def run_state_workload(community: Community, controllers: dict,
                       states: "Iterable[Any]",
                       proposer: "str | None" = None) -> dict:
    """Drive a sequence of overwrites and measure latency + messages.

    Latency is virtual-time between propose and group agreement at the
    proposer; message counts come from the network statistics delta.
    Returns a summary dict for benchmark reporting.
    """
    runtime = community.runtime
    assert isinstance(runtime, SimRuntime)
    network = runtime.network
    proposer = proposer or next(iter(controllers))
    controller = controllers[proposer]
    b2b_object = controller.b2b_object

    latency = LatencyRecorder()
    counter = MessageCounter()
    counter.start(network)
    completed = 0
    rejected = 0
    for state in states:
        started = network.now()
        controller.enter()
        controller.overwrite()
        b2b_object.apply_state(state)
        try:
            controller.leave()
            completed += 1
        except ValidationFailed:
            rejected += 1
        latency.record(network.now() - started)
    runtime.settle()
    messages = counter.delta(network)
    return {
        "proposer": proposer,
        "completed": completed,
        "rejected": rejected,
        "latency": latency.summary(),
        "messages": messages,
        "per_run_messages": (messages["delivered"] / max(1, completed + rejected)),
    }


def assert_replicas_converged(controllers: dict) -> Any:
    """All replicas must hold identical agreed state; returns it."""
    states = {name: controller.agreed_state()
              for name, controller in controllers.items()}
    reference = next(iter(states.values()))
    for name, state in states.items():
        if state != reference:
            raise AssertionError(f"replica divergence at {name}: {state!r}")
    return reference


def protocol_message_count(n_parties: int) -> int:
    """The analytic per-run message count: 3(n-1) for n parties.

    m1 to each of the n-1 recipients, one m2 from each, and m3 back to
    each — the O(n) efficiency claim of section 7 (the reliable layer's
    acks and retransmissions come on top and are reported separately).
    """
    return 3 * (n_parties - 1)
