"""Benchmark support: workloads, metrics and experiment drivers."""

from repro.bench.harness import (
    assert_replicas_converged,
    build_community,
    found_dict_object,
    protocol_message_count,
    run_state_workload,
)
from repro.bench.metrics import LatencyRecorder, MessageCounter, format_table
from repro.bench.workload import (
    counter_states,
    large_state,
    order_edit_sequence,
    random_updates,
)

__all__ = [
    "assert_replicas_converged",
    "build_community",
    "found_dict_object",
    "protocol_message_count",
    "run_state_workload",
    "LatencyRecorder",
    "MessageCounter",
    "format_table",
    "counter_states",
    "large_state",
    "order_edit_sequence",
    "random_updates",
]
