"""Tag-based binary value codec for wire framing.

Encodes exactly the value domain of
:func:`repro.util.encoding.canonical_bytes` — dict / list / tuple /
str / bytes / int / bool / float / None with str-only dict keys — into
a compact tagged form.  All lengths, counts and small integers are
unsigned LEB128 varints (7 payload bits per byte, high bit set on every
byte but the last), so the common short string costs one length byte,
not four:

========  ==========================================================
tag       layout after the tag byte
========  ==========================================================
``N``     none
``T/F``   true / false
``j``     int: zig-zag varint (0,-1,1,-2,... -> 0,1,2,3,...)
``i``     big int (zig-zag >= 2**63): varint byte-count, then signed
          big-endian two's-complement bytes
``s``     str: varint byte-count, then UTF-8
``b``     bytes: varint byte-count, then the raw bytes (no base64)
``f``     float: IEEE-754 double, big-endian
``l``     list/tuple: varint item-count, then the items
``d``     dict: varint pair-count, then per pair a varint key
          byte-count, the key UTF-8 (keys carry no tag — they are
          always strings), and the tagged value
========  ==========================================================

Unlike the canonical JSON form this is *not* unique (dict pairs keep
insertion order rather than sorting), which is fine: the binary codec
frames transport envelopes only, it never feeds a hash or a signature.
``decode_value(encode_value(x)) == x`` for every canonically encodable
``x`` (tuples come back as lists, exactly as JSON framing returns them).

Both walkers inline the str/bytes/int/bool leaf cases inside the dict
loop — protocol envelopes are overwhelmingly dicts of those leaves, and
one Python call per *container* instead of per *node* is worth ~2x on
the m1/m2/m3 hot path.  Tags appear as int literals in the hot
comparisons for the same reason; the table above is the authority.

The decoder is written for hostile input: container counts are checked
against the remaining buffer before any loop, varints are capped at 63
bits, and a cursor running off the buffer surfaces as
:class:`BinaryCodecError` via ``IndexError``.  An over-long declared
string length can at worst yield a short slice, which is then caught by
the cursor/trailing checks — decode never returns a value for a
malformed buffer, and never allocates more than the frame shipped.
"""

from __future__ import annotations

import struct
from typing import Any

_F64 = struct.Struct(">d")

_INT64_MAG = 1 << 63  # zig-zag values past this go to the bigint form


class WireError(ValueError):
    """Base error for wire codec / framing violations."""


class BinaryCodecError(WireError):
    """Malformed or unencodable data in the binary value codec."""


def encode_value(value: Any) -> bytes:
    """Encode *value* into the tagged binary form."""
    buf = bytearray()
    _encode_into(buf, value)
    return bytes(buf)


def _varint(buf: bytearray, n: int) -> None:
    """Append unsigned LEB128 (callers fast-path the 1-byte case)."""
    while n >= 0x80:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


#: Pre-encoded ``varint-length + UTF-8`` forms of dict keys, mirroring
#: the decoder's ``_KEY_CACHE`` — the same small key vocabulary is
#: re-encoded on every frame otherwise.  Bounded for the same reason.
_KEY_ENCODED: "dict[str, bytes]" = {}


def _encode_into(buf: bytearray, value: Any) -> None:
    # Exact-type dispatch, hottest kinds first.  bool before int.
    kind = type(value)
    append = buf.append
    if kind is dict:
        append(0x64)  # 'd'
        n = len(value)
        if n < 0x80:
            append(n)
        else:
            _varint(buf, n)
        key_encoded = _KEY_ENCODED
        for key, item in value.items():
            pre = key_encoded.get(key)
            if pre is not None:
                buf += pre
            else:
                if type(key) is not str:
                    if not isinstance(key, str):
                        raise BinaryCodecError(
                            f"binary encoding requires str keys, got {key!r}"
                        )
                    key = str(key)
                raw = key.encode("utf-8")
                n = len(raw)
                if n < 0x80:
                    head = bytearray((n,))
                else:
                    head = bytearray()
                    _varint(head, n)
                head += raw
                pre = bytes(head)
                if len(key_encoded) < _KEY_CACHE_MAX:
                    key_encoded[key] = pre
                buf += pre
            # Inline the leaf kinds; recurse only for containers/rare.
            ikind = type(item)
            if ikind is str:
                raw = item.encode("utf-8")
                append(0x73)  # 's'
                n = len(raw)
                if n < 0x80:
                    append(n)
                else:
                    _varint(buf, n)
                buf += raw
            elif ikind is bytes:
                append(0x62)  # 'b'
                n = len(item)
                if n < 0x80:
                    append(n)
                else:
                    _varint(buf, n)
                buf += item
            elif ikind is bool:
                append(0x54 if item else 0x46)  # 'T' / 'F'
            elif ikind is int:
                zigzag = (item << 1) if item >= 0 else ((-item << 1) - 1)
                if zigzag < _INT64_MAG:
                    append(0x6A)  # 'j'
                    if zigzag < 0x80:
                        append(zigzag)
                    else:
                        _varint(buf, zigzag)
                else:
                    _encode_bigint(buf, item)
            else:
                _encode_into(buf, item)
    elif kind is str:
        raw = value.encode("utf-8")
        append(0x73)  # 's'
        n = len(raw)
        if n < 0x80:
            append(n)
        else:
            _varint(buf, n)
        buf += raw
    elif kind is bytes:
        append(0x62)  # 'b'
        n = len(value)
        if n < 0x80:
            append(n)
        else:
            _varint(buf, n)
        buf += value
    elif kind is bool:
        append(0x54 if value else 0x46)  # 'T' / 'F'
    elif kind is int:
        # Zig-zag folds the sign into the low bit so small magnitudes
        # of either sign stay short.
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        if zigzag < _INT64_MAG:
            append(0x6A)  # 'j'
            if zigzag < 0x80:
                append(zigzag)
            else:
                _varint(buf, zigzag)
        else:
            _encode_bigint(buf, value)
    elif kind is list or kind is tuple:
        append(0x6C)  # 'l'
        n = len(value)
        if n < 0x80:
            append(n)
        else:
            _varint(buf, n)
        for item in value:
            _encode_into(buf, item)
    elif value is None:
        append(0x4E)  # 'N'
    elif kind is float:
        append(0x66)  # 'f'
        buf += _F64.pack(value)
    elif isinstance(value, (str, bytes, dict, bool, int, list, tuple, float)):
        # Subclasses (rare in protocol data) normalise to the base type.
        for base in (str, bytes, dict, bool, int, list, float):
            if isinstance(value, base):
                if base is bool:
                    _encode_into(buf, bool(value))
                elif base is list:
                    _encode_into(buf, list(value))
                else:
                    _encode_into(buf, base(value))
                return
        _encode_into(buf, list(value))
    else:
        raise BinaryCodecError(
            f"value of type {type(value).__name__} is not wire-encodable"
        )


def _encode_bigint(buf: bytearray, value: int) -> None:
    raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
    buf.append(0x69)  # 'i'
    _varint(buf, len(raw))
    buf += raw


#: Interned dict-key texts.  Envelope keys come from a small fixed
#: vocabulary (msg_type, signature, payload, ...), so the UTF-8 decode
#: and string allocation per key are pure waste after the first frame.
#: Bounded so hostile key floods cannot grow it without limit.
_KEY_CACHE: "dict[bytes, str]" = {}
_KEY_CACHE_MAX = 4096


def decode_value(data: bytes) -> Any:
    """Decode one value; the buffer must contain exactly one value.

    Implemented as closures over a shared cursor rather than a
    ``(value, offset)`` tuple chain, with leaf values inlined in the
    dict loop — per-node Python calls were the dominant decode cost.
    """
    if type(data) is not bytes:
        data = bytes(data)
    size = len(data)
    pos = 0
    key_cache = _KEY_CACHE

    def varint_rest(first: int) -> int:
        # Continuation of a varint whose first byte had the high bit set.
        nonlocal pos
        result = first & 0x7F
        shift = 7
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                return result
            shift += 7
            if shift > 63:
                raise BinaryCodecError("varint exceeds 63 bits")

    def read_dict() -> dict:
        # The cursor sits just past a 'd' tag.  The hot leaf path runs
        # entirely on locals (``d``/``p``), syncing the shared closure
        # cursor only around recursive calls and rare long varints —
        # cell loads per node are measurable at this call volume.
        nonlocal pos
        d = data
        p = pos
        count = d[p]
        p += 1
        if count >= 0x80:
            pos = p
            count = varint_rest(count)
            p = pos
        if count > size - p:
            raise BinaryCodecError(
                f"implausible count {count} with {size - p} "
                f"byte(s) remaining"
            )
        result = {}
        for _ in range(count):
            length = d[p]
            p += 1
            if length >= 0x80:
                pos = p
                length = varint_rest(length)
                p = pos
            end = p + length
            raw = d[p:end]
            p = end
            key = key_cache.get(raw)
            if key is None:
                key = raw.decode()
                if len(key_cache) < _KEY_CACHE_MAX:
                    key_cache[raw] = key
            tag = d[p]
            p += 1
            # Leaf kinds inline; containers and rarities recurse.
            if tag == 0x73:  # 's'
                length = d[p]
                p += 1
                if length >= 0x80:
                    pos = p
                    length = varint_rest(length)
                    p = pos
                end = p + length
                result[key] = d[p:end].decode()
                p = end
            elif tag == 0x62:  # 'b'
                length = d[p]
                p += 1
                if length >= 0x80:
                    pos = p
                    length = varint_rest(length)
                    p = pos
                end = p + length
                result[key] = d[p:end]
                p = end
            elif tag == 0x64:  # 'd'
                pos = p
                result[key] = read_dict()
                p = pos
            elif tag == 0x6A:  # 'j'
                zigzag = d[p]
                p += 1
                if zigzag >= 0x80:
                    pos = p
                    zigzag = varint_rest(zigzag)
                    p = pos
                result[key] = (zigzag >> 1) ^ -(zigzag & 1)
            else:
                pos = p - 1
                result[key] = read()
                p = pos
        pos = p
        return result

    def read() -> Any:
        nonlocal pos
        tag = data[pos]
        pos += 1
        if tag == 0x64:  # 'd'
            return read_dict()
        if tag == 0x73 or tag == 0x62:  # 's' / 'b'
            length = data[pos]
            pos += 1
            if length >= 0x80:
                length = varint_rest(length)
            end = pos + length
            raw = data[pos:end]
            pos = end
            return raw.decode() if tag == 0x73 else raw
        if tag == 0x6A:  # 'j'
            zigzag = data[pos]
            pos += 1
            if zigzag >= 0x80:
                zigzag = varint_rest(zigzag)
            return (zigzag >> 1) ^ -(zigzag & 1)
        if tag == 0x6C:  # 'l'
            count = data[pos]
            pos += 1
            if count >= 0x80:
                count = varint_rest(count)
            if count > size - pos:
                raise BinaryCodecError(
                    f"implausible count {count} with {size - pos} "
                    f"byte(s) remaining"
                )
            return [read() for _ in range(count)]
        if tag == 0x54:  # 'T'
            return True
        if tag == 0x46:  # 'F'
            return False
        if tag == 0x4E:  # 'N'
            return None
        if tag == 0x69:  # 'i'
            length = data[pos]
            pos += 1
            if length >= 0x80:
                length = varint_rest(length)
            end = pos + length
            if end > size:
                raise BinaryCodecError("truncated big int")
            raw = data[pos:end]
            pos = end
            return int.from_bytes(raw, "big", signed=True)
        if tag == 0x66:  # 'f'
            if pos + 8 > size:
                raise BinaryCodecError("truncated float")
            result = _F64.unpack_from(data, pos)[0]
            pos += 8
            return result
        raise BinaryCodecError(f"unknown tag byte {bytes((tag,))!r}")

    try:
        value = read()
    except IndexError as exc:
        raise BinaryCodecError("truncated value") from exc
    except UnicodeDecodeError as exc:
        raise BinaryCodecError(f"invalid UTF-8: {exc}") from exc
    # An over-long str/bytes length silently yields a short slice and a
    # cursor past the end; this check (or the IndexError above) is what
    # rejects that buffer, so it must stay exact, not `<=`.
    if pos != size:
        raise BinaryCodecError(
            f"cursor at {pos} of {size}: truncated or trailing bytes"
        )
    return value
