"""Connection framing: codec negotiation, frame assembly, frame parsing.

One TCP connection carries one codec, announced once:

* A **binary** sender opens the connection with a single ASCII magic
  line — ``REPRO-WIRE/1 binary\\n`` — then ships frames as a u32
  big-endian length prefix followed by that many bytes of
  :mod:`repro.wire.binary`-encoded envelope.
* A **json** sender sends no preamble at all; its first byte is the
  ``{`` of a canonical-JSON line, exactly the original wire format.

A receiver therefore never needs configuration: the first bytes of the
connection either name a codec or are a JSON frame, and a community can
mix binary and JSON senders freely.  The magic line carries a version
number so a future frame layout can coexist on the same port.

:class:`EnvelopeEncoder` also implements the encode-once broadcast
path: an m1/m2/m3 fan-out sends the *same* ``payload`` dict to every
peer (only ``recipient``/``msg_id`` differ), so the payload — virtually
all of the frame — is serialised once and the per-peer frames are
assembled around the cached bytes.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from repro.util.encoding import canonical_bytes, from_canonical_bytes
from repro.wire.binary import (
    BinaryCodecError,
    WireError,
    decode_value,
    encode_value,
)

CODEC_JSON = "json"
CODEC_BINARY = "binary"
CODECS = (CODEC_JSON, CODEC_BINARY)

WIRE_VERSION = 1
MAGIC_PREFIX = b"REPRO-WIRE/"

#: Upper bound on one decoded frame.  Inbound frames declaring more are
#: rejected before any allocation, bounding what garbage or an intruder
#: can make a listener buffer (satellite of ISSUE 8).
MAX_FRAME = 16 * 1024 * 1024

#: A preamble line is tiny; anything longer without a newline is noise.
_MAX_PREAMBLE = 64

_U32 = struct.Struct(">I")


class FrameError(WireError):
    """The byte stream violates the framing layer (fatal per connection)."""


class FrameTooLargeError(FrameError):
    """A frame declared or accumulated more than ``max_frame`` bytes."""


def magic_line(codec: str, version: int = WIRE_VERSION) -> bytes:
    """The connection preamble announcing *codec* (empty for JSON)."""
    if codec == CODEC_JSON:
        return b""
    return MAGIC_PREFIX + f"{version} {codec}\n".encode("ascii")


def _parse_magic(line: bytes) -> str:
    """Validate a preamble line and return the codec it names."""
    body = line[len(MAGIC_PREFIX):]
    try:
        version_text, codec = body.decode("ascii").split(" ", 1)
        version = int(version_text)
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"malformed wire preamble {line!r}") from exc
    if version != WIRE_VERSION:
        raise FrameError(f"unsupported wire version {version}")
    if codec not in CODECS:
        raise FrameError(f"unknown wire codec {codec!r}")
    return codec


class EnvelopeEncoder:
    """Turns envelopes into on-the-wire frames for one codec.

    ``encode`` returns the complete frame (length prefix included for
    binary, trailing newline included for JSON).  The payload bytes are
    memoised by object identity in a single slot: a broadcast enqueues
    n-1 envelopes sharing one payload dict back to back, so each hits
    the memo and only the thin envelope header is re-encoded per peer.
    Payload dicts are treated as frozen once handed to the transport
    (the protocol layer never mutates a message after sending it).
    """

    __slots__ = ("codec", "_memo")

    def __init__(self, codec: str = CODEC_JSON) -> None:
        if codec not in CODECS:
            raise ValueError(f"unknown wire codec {codec!r}")
        self.codec = codec
        self._memo: "Optional[tuple]" = None

    @property
    def preamble(self) -> bytes:
        """Bytes to send once when a connection opens."""
        return magic_line(self.codec)

    def payload_bytes(self, payload: dict) -> bytes:
        """Codec encoding of *payload*, memoised by identity."""
        memo = self._memo
        if memo is not None and memo[0] is payload:
            return memo[1]
        if self.codec == CODEC_BINARY:
            raw = encode_value(payload)
        else:
            raw = canonical_bytes(payload)
        self._memo = (payload, raw)
        return raw

    def encode(self, envelope) -> bytes:
        """One complete frame for *envelope* (header + cached payload)."""
        payload_raw = self.payload_bytes(envelope.payload)
        if self.codec == CODEC_BINARY:
            # The envelope header is assembled inline around the cached
            # payload: four zero placeholder bytes for the u32 length
            # prefix, then the dict tag, pair count 4, and each key as
            # a pre-encoded ``varint-length + UTF-8`` literal.  Built in
            # one buffer and copied out once — this header is the only
            # per-peer work on a broadcast, so it stays call-free.
            body = bytearray(b"\x00\x00\x00\x00d\x04\x06msg_id")
            _bstr(body, envelope.msg_id)
            body += b"\x07payload"
            body += payload_raw
            body += b"\x09recipient"
            _bstr(body, envelope.recipient)
            body += b"\x06sender"
            _bstr(body, envelope.sender)
            _U32.pack_into(body, 0, len(body) - 4)
            return bytes(body)
        # Canonical JSON sorts keys, so assembling the envelope around
        # the cached payload bytes in sorted key order reproduces
        # canonical_bytes(envelope.to_dict()) byte for byte.
        return b"".join((
            b'{"msg_id":', _jstr(envelope.msg_id),
            b',"payload":', payload_raw,
            b',"recipient":', _jstr(envelope.recipient),
            b',"sender":', _jstr(envelope.sender),
            b"}\n",
        ))


def _jstr(text: str) -> bytes:
    return json.dumps(text, ensure_ascii=True).encode("ascii")


def _bstr(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    n = len(raw)
    buf.append(0x73)  # 's'
    if n < 0x80:
        buf.append(n)
    else:
        _bvarint(buf, n)
    buf += raw


def _bvarint(buf: bytearray, n: int) -> None:
    while n >= 0x80:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


class FrameDecoder:
    """Incremental per-connection frame parser with codec auto-detect.

    Feed raw socket chunks with :meth:`feed`; pull complete frames with
    :meth:`next_frame` and decode them with :meth:`decode`.  Framing
    violations (unrecognised preamble, oversized frame, a JSON line
    that never terminates) raise :class:`FrameError` and poison the
    connection — the caller should close it.  A frame that *parses* at
    the framing layer but whose body fails to decode raises
    :class:`~repro.wire.binary.WireError` from :meth:`decode` only, so
    one malformed frame need not kill an otherwise healthy connection.
    """

    __slots__ = ("codec", "max_frame", "_buffer")

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.codec: "Optional[str]" = None
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._buffer += chunk

    def next_frame(self) -> "Optional[bytes]":
        """The next complete frame body, or None until more bytes arrive."""
        if self.codec is None and not self._detect():
            return None
        buffer = self._buffer
        if self.codec == CODEC_BINARY:
            if len(buffer) < 4:
                return None
            length = _U32.unpack_from(buffer)[0]
            if length > self.max_frame:
                raise FrameTooLargeError(
                    f"binary frame declares {length} bytes "
                    f"(cap {self.max_frame})"
                )
            if len(buffer) < 4 + length:
                return None
            frame = bytes(buffer[4:4 + length])
            del buffer[:4 + length]
            return frame
        newline = buffer.find(b"\n")
        if newline < 0:
            if len(buffer) > self.max_frame:
                raise FrameTooLargeError(
                    f"JSON line exceeds {self.max_frame} bytes "
                    f"without terminating"
                )
            return None
        frame = bytes(buffer[:newline])
        del buffer[:newline + 1]
        if not frame:
            return self.next_frame()  # tolerate blank keep-alive lines
        return frame

    def decode(self, frame: bytes):
        """Decode one frame body into the envelope dict it carries."""
        if self.codec == CODEC_BINARY:
            return decode_value(frame)
        try:
            return from_canonical_bytes(frame)
        except BinaryCodecError:
            raise
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(f"malformed JSON frame: {exc}") from exc

    # ------------------------------------------------------------------

    def _detect(self) -> bool:
        """Resolve the connection codec from its first bytes."""
        buffer = self._buffer
        while buffer[0:1] == b"\n":  # ignore blank keep-alive lines
            del buffer[0]
        if not buffer:
            return False
        if buffer[0:1] == b"{":
            # Legacy / JSON peer: no preamble, straight into frames.
            self.codec = CODEC_JSON
            return True
        if not buffer.startswith(MAGIC_PREFIX):
            if MAGIC_PREFIX.startswith(bytes(buffer)):
                return False  # plausible partial preamble: wait
            raise FrameError(
                f"unrecognised connection preamble {bytes(buffer[:16])!r}"
            )
        newline = buffer.find(b"\n")
        if newline < 0:
            if len(buffer) > _MAX_PREAMBLE:
                raise FrameError("unterminated wire preamble")
            return False
        self.codec = _parse_magic(bytes(buffer[:newline]))
        del buffer[:newline + 1]
        return True
