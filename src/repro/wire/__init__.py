"""``repro.wire`` — the wire codec and framing layer.

This package owns *framing only*: how an
:class:`~repro.transport.base.Envelope` becomes bytes on a socket and
back.  Everything with protocol authority — signatures, digests, state
identifiers, golden evidence — keeps hashing through
:func:`repro.util.encoding.canonical_bytes`; the frame codec can change
without perturbing a single signed byte.

Two codecs share one connection-level negotiation:

* **json** — the original canonical-JSON-lines framing (one envelope
  per ``\\n``-terminated line).  No preamble: a JSON frame always
  starts with ``{``, which is how legacy peers are recognised.
* **binary** — a compact tag-based, length-prefixed encoding (no
  base64 inflation for ``bytes``, no recursive dict re-copies).  A
  sender announces it with a one-line magic/version header when the
  connection opens, so a receiver that never saw the header keeps
  speaking JSON lines and mixed-codec communities interoperate.

See ``docs/PROTOCOL.md`` ("Wire format") for the byte-level layout.
"""

from repro.wire.binary import decode_value, encode_value
from repro.wire.framing import (
    CODEC_BINARY,
    CODEC_JSON,
    CODECS,
    MAGIC_PREFIX,
    MAX_FRAME,
    EnvelopeEncoder,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    WireError,
    magic_line,
)

__all__ = [
    "CODEC_BINARY",
    "CODEC_JSON",
    "CODECS",
    "MAGIC_PREFIX",
    "MAX_FRAME",
    "EnvelopeEncoder",
    "FrameDecoder",
    "FrameError",
    "FrameTooLargeError",
    "WireError",
    "decode_value",
    "encode_value",
    "magic_line",
]
