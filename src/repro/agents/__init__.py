"""Indirect interaction: trusted agents and TTP validation services."""

from repro.agents.relay import StateRelay
from repro.agents.trusted_agent import (
    DisclosurePolicy,
    FilterDisclosurePolicy,
    TrustedAgent,
)
from repro.agents.ttp import ValidatingTTP

__all__ = [
    "StateRelay",
    "DisclosurePolicy",
    "FilterDisclosurePolicy",
    "TrustedAgent",
    "ValidatingTTP",
]
