"""Trusted third party validation service (Figure 6).

"As an alternative to playing the game directly between two players, it
may be desirable to validate moves at a TTP in order to guarantee that
they are encoded and observed correctly ... a TTP that validates each
player's move before it is disclosed to their opponent."

A :class:`ValidatingTTP` node shares one two-party object with each
principal.  When a principal's proposal passes the TTP's validation
(i.e. the two-party coordination on that side succeeds), the TTP relays
the agreed state to every other side; a vetoed proposal never reaches
the other principals.
"""

from __future__ import annotations

from repro.agents.relay import StateRelay
from repro.core.node import OrganisationNode


class ValidatingTTP:
    """Relays validated state between per-principal shared objects."""

    def __init__(self, node: OrganisationNode, side_objects: "list[str]",
                 retry_interval: float = 0.05) -> None:
        if len(side_objects) < 2:
            raise ValueError("a TTP needs at least two sides to mediate")
        self.node = node
        self.side_objects = list(side_objects)
        self.relays: "list[StateRelay]" = []
        for source in self.side_objects:
            for target in self.side_objects:
                if source != target:
                    self.relays.append(StateRelay(
                        node, source, target, retry_interval=retry_interval,
                    ))

    @property
    def relayed(self) -> int:
        return sum(relay.relayed for relay in self.relays)
