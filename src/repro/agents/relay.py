"""Relay machinery shared by trusted agents and TTP services.

A relay watches coordination outcomes on one shared object and propagates
validated state to another shared object hosted by the same node.  Busy
rejections (the target replica is mid-run) are retried with backoff;
relays converge because they only propagate *agreed* states and stop when
source and target agree.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.node import OrganisationNode
from repro.errors import ConcurrencyError, NotConnectedError
from repro.protocol.events import Event, RunCompleted

Transform = Callable[[Any], "Optional[Any]"]


class StateRelay:
    """One-directional propagation of agreed state between two objects."""

    def __init__(self, node: OrganisationNode, source: str, target: str,
                 transform: "Transform | None" = None,
                 retry_interval: float = 0.05) -> None:
        self.node = node
        self.source = source
        self.target = target
        self.transform = transform if transform is not None else (lambda state: state)
        self.retry_interval = retry_interval
        self.relayed = 0
        self.withheld = 0
        node.add_listener(self._on_event)

    def _on_event(self, event: Event) -> None:
        if not isinstance(event, RunCompleted) or event.kind != "state":
            return
        if event.object_name == self.source and event.valid:
            self._try_relay()
        elif (event.object_name == self.target and not event.valid
              and event.role == "proposer"
              and any("busy" in diag for diag in event.diagnostics)):
            # Our relay proposal collided with another run; retry later.
            self.node.runtime.network.schedule(self.retry_interval, self._try_relay)

    def _try_relay(self) -> None:
        try:
            source_session = self.node.party.session(self.source)
            target_session = self.node.party.session(self.target)
        except NotConnectedError:
            return
        disclosed = self.transform(source_session.state.agreed_state)
        if disclosed is None:
            self.withheld += 1
            return
        if disclosed == target_session.state.agreed_state:
            return  # already converged
        try:
            self.node.propagate_new_state(self.target, disclosed)
            self.relayed += 1
        except ConcurrencyError:
            # Target replica is mid-run; retry once it settles.
            self.node.runtime.network.schedule(self.retry_interval, self._try_relay)
