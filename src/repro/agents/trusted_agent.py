"""Trusted agents (Figure 1b).

In the indirect interaction style, each organisation interacts only with
its own trusted agent; the agents coordinate interaction state among
themselves.  State disclosure is *conditional*: the agent's disclosure
policy decides what part of the principal's state reaches the other
agents and what part of the shared state reaches the principal.

Concretely, a :class:`TrustedAgent` node is a member of two sharing
groups: an *inner* two-party object shared with its principal and an
*outer* object shared with the other agents.  Validated inner changes are
propagated outward through the disclosure policy and vice versa.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.agents.relay import StateRelay
from repro.core.node import OrganisationNode


class DisclosurePolicy:
    """Decides what crosses the agent boundary in each direction.

    Either method may return None to withhold the change entirely —
    "conditional state disclosure" (section 2).
    """

    def outbound(self, inner_state: Any) -> "Optional[Any]":
        """Project the principal's state for disclosure to other agents."""
        return inner_state

    def inbound(self, outer_state: Any) -> "Optional[Any]":
        """Project the shared state for delivery to the principal."""
        return outer_state


class FilterDisclosurePolicy(DisclosurePolicy):
    """Dict-state policy: only the listed keys are disclosed outward."""

    def __init__(self, disclosed_keys: "list[str]",
                 inbound_keys: "list[str] | None" = None) -> None:
        self.disclosed_keys = list(disclosed_keys)
        self.inbound_keys = list(inbound_keys) if inbound_keys is not None else None

    def outbound(self, inner_state: Any) -> "Optional[Any]":
        if not isinstance(inner_state, dict):
            return None
        return {key: inner_state[key] for key in self.disclosed_keys
                if key in inner_state}

    def inbound(self, outer_state: Any) -> "Optional[Any]":
        if self.inbound_keys is None:
            return outer_state
        if not isinstance(outer_state, dict):
            return None
        return {key: outer_state[key] for key in self.inbound_keys
                if key in outer_state}


class TrustedAgent:
    """Bridges a principal's inner object and the agents' outer object."""

    def __init__(self, node: OrganisationNode, inner_object: str,
                 outer_object: str,
                 policy: "DisclosurePolicy | None" = None,
                 retry_interval: float = 0.05) -> None:
        self.node = node
        self.inner_object = inner_object
        self.outer_object = outer_object
        self.policy = policy or DisclosurePolicy()
        self._out_relay = StateRelay(
            node, inner_object, outer_object,
            transform=self._outbound, retry_interval=retry_interval,
        )
        self._in_relay = StateRelay(
            node, outer_object, inner_object,
            transform=self._inbound, retry_interval=retry_interval,
        )

    def _outbound(self, inner_state: Any) -> "Optional[Any]":
        disclosed = self.policy.outbound(inner_state)
        if disclosed is None:
            return None
        # Merge into the current outer state so undisclosed parts of the
        # shared state contributed by other agents survive.
        outer = self.node.party.session(self.outer_object).state.agreed_state
        if isinstance(outer, dict) and isinstance(disclosed, dict):
            merged = dict(outer)
            merged.update(disclosed)
            return merged
        return disclosed

    def _inbound(self, outer_state: Any) -> "Optional[Any]":
        delivered = self.policy.inbound(outer_state)
        if delivered is None:
            return None
        inner = self.node.party.session(self.inner_object).state.agreed_state
        if isinstance(inner, dict) and isinstance(delivered, dict):
            merged = dict(inner)
            merged.update(delivered)
            return merged
        return delivered

    @property
    def relayed_out(self) -> int:
        return self._out_relay.relayed

    @property
    def relayed_in(self) -> int:
        return self._in_relay.relayed

    @property
    def withheld(self) -> int:
        return self._out_relay.withheld + self._in_relay.withheld
