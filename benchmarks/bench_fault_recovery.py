"""Experiment C2 — liveness under bounded temporary failures (section 4.1).

"If all parties behave correctly, liveness is guaranteed despite a
bounded number of temporary network and computer related failures."

We run a fixed workload (6 coordinated updates, 3 parties) under crash
and partition schedules of increasing severity and measure time to
completion.  Expected shape: every schedule completes (liveness holds);
completion time grows roughly with injected downtime.
"""

from __future__ import annotations

from repro.bench.harness import assert_replicas_converged
from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime
from repro.faults import bounded_failure_schedule

UPDATES = 6


def run_workload(failures, kind, seed=0):
    names = ["Org1", "Org2", "Org3"]
    community = Community(names, runtime=SimRuntime(seed=seed))
    objects = {n: DictB2BObject() for n in names}
    controllers = community.found_object("shared", objects)
    schedule = bounded_failure_schedule(
        community, names, failures=failures, period=0.4, downtime=0.35,
        start=0.02, kind=kind,
    )
    schedule.arm()
    network = community.runtime.network
    start = network.now()
    controller = controllers["Org1"]
    for i in range(UPDATES):
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute(f"k{i}", i)
        controller.leave()
    expected = {f"k{i}": i for i in range(UPDATES)}
    converged = community.runtime.wait_until(
        lambda: all(
            community.node(n).party.session("shared").state.agreed_state
            == expected for n in names
        ),
        timeout=120.0,
    )
    assert converged
    final = assert_replicas_converged(controllers)
    assert final == expected
    return {
        "failures": failures,
        "kind": kind,
        "downtime": schedule.total_downtime(),
        "completion_time": network.now() - start,
        "retransmissions": sum(
            community.node(n).endpoint.retransmissions for n in names
        ),
    }


def test_c2_liveness_under_bounded_failures(benchmark, report):
    rows = []
    results = []
    for kind in ("crash", "partition"):
        for failures in (0, 1, 2, 4):
            result = run_workload(failures, kind, seed=failures * 7 + 1)
            results.append(result)
            rows.append([
                kind, result["failures"], result["downtime"],
                result["completion_time"], result["retransmissions"],
            ])

    # Liveness: all workloads completed (asserted inside run_workload).
    # Shape: more downtime never makes the run *faster* by much; the
    # heaviest schedule is measurably slower than the failure-free one.
    baseline = [r for r in results if r["failures"] == 0][0]
    heaviest = max(results, key=lambda r: r["downtime"])
    assert heaviest["completion_time"] > baseline["completion_time"]
    assert heaviest["retransmissions"] > 0

    def failure_free():
        run_workload(0, "crash", seed=123)

    benchmark.pedantic(failure_free, rounds=5, iterations=1)

    body = format_table(
        ["fault kind", "temporary failures", "injected downtime (s)",
         "virtual completion time (s)", "retransmissions"],
        rows,
    ) + "\n\nall workloads completed with identical replicas: yes (liveness)"
    report("C2", "liveness under bounded temporary failures", body)
