"""Experiment F7 — Figure 7: order processing with asymmetric validation.

Replays the exact edit sequence of the paper's screenshot:

1. the customer orders 2 widget1s                      (valid)
2. the supplier prices widget1 at 10 per unit          (valid)
3. the customer amends the order for 10 widget2s       (valid)
4. the supplier prices widget2 AND changes its quantity (invalid)

Asserted: steps 1-3 are reflected at both replicas; step 4 is rejected as
a whole and is not reflected in the customer's copy.
"""

from __future__ import annotations

from repro.apps.orders import (
    ROLE_CUSTOMER,
    ROLE_SUPPLIER,
    OrderClient,
    OrderObject,
)
from repro.bench.metrics import format_table
from repro.core import Community, SimRuntime
from repro.errors import ValidationFailed

ROLES = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER}


def build(seed=0):
    community = Community(["Customer", "Supplier"],
                          runtime=SimRuntime(seed=seed))
    objects = {n: OrderObject(ROLES) for n in community.names()}
    controllers = community.found_object("order", objects)
    return (community, OrderClient(controllers["Customer"]),
            OrderClient(controllers["Supplier"]), objects)


def test_fig7_order_processing(benchmark, report):
    community, customer, supplier, objects = build()
    steps = []

    customer.add_item("widget1", 2)
    steps.append(["customer orders 2 widget1", "accepted"])
    supplier.price_item("widget1", 10)
    steps.append(["supplier prices widget1 at 10", "accepted"])
    customer.add_item("widget2", 10)
    steps.append(["customer orders 10 widget2", "accepted"])
    try:
        supplier.price_and_change_quantity("widget2", 20, 5)
        steps.append(["supplier prices widget2 + changes quantity", "ACCEPTED?!"])
        rejected = False
    except ValidationFailed as exc:
        steps.append(["supplier prices widget2 + changes quantity",
                      f"rejected: {exc.diagnostics[0]}"])
        rejected = True
    community.settle(1.0)

    assert rejected
    for name in ("Customer", "Supplier"):
        assert objects[name].item("widget1") == {
            "quantity": 2, "price": 10, "approved": False}
        # the invalid composite change left widget2 untouched
        assert objects[name].item("widget2") == {
            "quantity": 10, "price": None, "approved": False}

    # Benchmark one customer edit + one supplier pricing round-trip.
    seeds = iter(range(1, 1_000_000))

    def one_exchange():
        _com, cust, supp, _objs = build(seed=next(seeds))
        cust.add_item("widgetX", 1)
        supp.price_item("widgetX", 5)

    benchmark.pedantic(one_exchange, rounds=15, iterations=1)

    body = format_table(["action", "outcome"], steps) + (
        "\n\nfinal order at both replicas: widget1 x2 @10, widget2 x10 unpriced"
    )
    report("F7", "order processing with asymmetric validation", body)
