"""Experiment C7 — termination strategies ablation (section 7).

The base protocol deliberately blocks when a party stops responding.
Section 7 sketches two remedies: majority decision and deadlines with a
TTP that issues a certified abort (or a certified decision when the
response set is complete).

Scenario: 5 parties, one of which silently never responds.  We compare:

* **unanimity (paper)** — the run blocks; only evidence is produced;
* **majority + force-completion** — the run terminates *valid* (4/5);
* **deadline + TTP** — the run terminates with a certified abort and all
  honest parties share the same view.
"""

from __future__ import annotations

from repro.bench.metrics import format_table
from repro.core import DEFERRED_SYNCHRONOUS, Community, DictB2BObject, SimRuntime
from repro.extensions import (
    DeadlineMonitor,
    MajorityCoordinationEngine,
    TerminationTTP,
)
from repro.faults import SuppressResponses

PARTIES = 5
DEADLINE = 2.0


def build(engine_cls=None, seed=0):
    names = [f"Org{i + 1}" for i in range(PARTIES)]
    community = Community(names, runtime=SimRuntime(seed=seed))
    objects = {name: DictB2BObject() for name in names}
    kwargs = {"mode": DEFERRED_SYNCHRONOUS}
    if engine_cls is not None:
        kwargs["engine_cls"] = engine_cls
    controllers = community.found_object("shared", objects, **kwargs)
    SuppressResponses(community.node(f"Org{PARTIES}"))
    return community, controllers, objects


def propose(community, controllers, objects):
    controller = controllers["Org1"]
    controller.enter()
    controller.overwrite()
    objects["Org1"].set_attribute("x", 1)
    return controller.leave()


def scenario_unanimity(seed):
    community, controllers, objects = build(seed=seed)
    network = community.runtime.network
    start = network.now()
    ticket = propose(community, controllers, objects)
    community.settle(DEADLINE * 3)
    return {
        "strategy": "unanimity (paper)",
        "terminated": ticket.done,
        "outcome": "blocked",
        "time": float("nan"),
        "installed": objects["Org2"].get_attribute("x") == 1,
    }


def scenario_majority(seed):
    community, controllers, objects = build(
        engine_cls=MajorityCoordinationEngine, seed=seed)
    network = community.runtime.network
    start = network.now()
    ticket = propose(community, controllers, objects)
    community.settle(DEADLINE)
    engine = community.node("Org1").party.session("shared").state
    output = engine.force_completion(ticket.key)
    community.node("Org1")._process_output(output)
    community.settle(1.0)
    return {
        "strategy": "majority vote + deadline",
        "terminated": ticket.done,
        "outcome": "valid" if ticket.valid else "invalid",
        "time": network.now() - start,
        "installed": objects["Org2"].get_attribute("x") == 1,
    }


def scenario_deadline_ttp(seed):
    community, controllers, objects = build(seed=seed)
    network = community.runtime.network
    ttp = TerminationTTP(resolver=community.resolver)
    monitor = DeadlineMonitor(list(community.nodes.values()), ttp,
                              deadline=DEADLINE)
    start = network.now()
    ticket = propose(community, controllers, objects)
    community.settle(DEADLINE + 0.1)
    monitor.sweep()
    community.settle(0.5)
    honest = [f"Org{i + 1}" for i in range(PARTIES - 1)]
    views = {community.node(n).party.session("shared").state.busy
             for n in honest}
    return {
        "strategy": "deadline + TTP certified abort",
        "terminated": ticket.done,
        "outcome": "certified abort" if ticket.valid is False else "valid",
        "time": network.now() - start,
        "installed": objects["Org2"].get_attribute("x") == 1,
        "consistent": views == {False},
    }


def test_c7_termination_strategies(benchmark, report):
    unanimity = scenario_unanimity(seed=1)
    majority = scenario_majority(seed=2)
    certified = scenario_deadline_ttp(seed=3)

    # Shapes: the paper's protocol blocks (fail-safe), the extensions
    # terminate — majority resolves to valid, the TTP certifies abort.
    assert not unanimity["terminated"] and not unanimity["installed"]
    assert majority["terminated"] and majority["outcome"] == "valid"
    assert majority["installed"]
    assert certified["terminated"] and certified["outcome"] == "certified abort"
    assert not certified["installed"] and certified["consistent"]

    seeds = iter(range(100, 1_000_000))

    def one_certified_abort():
        scenario_deadline_ttp(seed=next(seeds))

    benchmark.pedantic(one_certified_abort, rounds=8, iterations=1)

    rows = [
        [r["strategy"], r["terminated"], r["outcome"],
         "-" if r["time"] != r["time"] else f"{r['time']:.2f}"]
        for r in (unanimity, majority, certified)
    ]
    body = format_table(
        ["termination strategy", "terminated", "outcome",
         "virtual time to resolution (s)"],
        rows,
    ) + (
        "\n\nnon-responder: 1 of 5 parties; deadline "
        f"{DEADLINE:.1f}s\n"
        "unanimity blocks fail-safe; majority installs despite the silent "
        "party; the TTP abort leaves every honest party with the same view"
    )
    report("C7", "termination strategies under a non-responder", body)
