"""Experiment F3 — Figure 3: cost of B2BObjects augmentation.

Figure 3 depicts how an application object is augmented with state
management, check-pointing, certificates, non-repudiation and
inter-organisation invocation.  We measure what that augmentation costs:
a bare in-process ``setAttribute`` versus the same call through the
generated coordinated wrapper (two-party deployment, loss-free network).

Expected shape: the augmented call is orders of magnitude more expensive
(signatures, time-stamps, logging, a network round), which is exactly the
trade the paper proposes — pay per *agreed* state change, not per read
(wrapped reads stay cheap).
"""

from __future__ import annotations

import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime, wrap_object


class PlainOrder:
    """The unaugmented enterprise object."""

    def __init__(self):
        self._state = {}

    def get_state(self):
        return dict(self._state)

    def apply_state(self, state):
        self._state = dict(state)

    def set_attribute(self, name, value):
        self._state[name] = value

    def get_attribute(self, name):
        return self._state.get(name)


def build_wrapped(seed=0):
    from repro.core.wrapper import WrappedB2BObject
    community = Community(["Org1", "Org2"], runtime=SimRuntime(seed=seed))
    apps = {n: PlainOrder() for n in community.names()}
    objects = {n: WrappedB2BObject(app) for n, app in apps.items()}
    controllers = community.found_object("order", objects)
    proxy = wrap_object(apps["Org1"], controllers["Org1"],
                        write_methods=["set_attribute"],
                        read_methods=["get_attribute"])
    return community, proxy, apps


def _time_calls(fn, count):
    start = time.perf_counter()
    for _ in range(count):
        fn()
    return (time.perf_counter() - start) / count


def test_fig3_augmentation_overhead(benchmark, report):
    bare = PlainOrder()
    counter = iter(range(10_000_000))
    bare_cost = _time_calls(lambda: bare.set_attribute("k", next(counter)), 20_000)

    community, proxy, apps = build_wrapped()
    wrapped_cost = _time_calls(
        lambda: proxy.set_attribute("k", next(counter)), 50
    )
    read_cost = _time_calls(lambda: proxy.get_attribute("k"), 2_000)

    def run():
        proxy.set_attribute("k", next(counter))

    benchmark(run)

    community.settle(1.0)
    assert apps["Org2"].get_attribute("k") is not None  # change replicated

    factor = wrapped_cost / bare_cost
    rows = [
        ["bare setAttribute", bare_cost * 1e6],
        ["wrapped (coordinated) setAttribute", wrapped_cost * 1e6],
        ["wrapped (examine-scoped) getAttribute", read_cost * 1e6],
    ]
    body = format_table(["call", "mean cost (us)"], rows) + (
        f"\n\naugmentation overhead factor on writes: {factor:.0f}x\n"
        "reads stay local: no coordination messages for examine scopes"
    )
    report("F3", "B2BObjects augmentation overhead", body)

    assert factor > 50  # writes pay for agreement
    assert read_cost < wrapped_cost / 10  # reads do not
