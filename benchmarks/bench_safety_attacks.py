"""Experiment C3 — safety under misbehaviour (section 4.4).

Runs the paper's full attack catalogue — omission, selective sending,
divergent content, forged commits, tampered bundles, replay, null
transitions, and the Dolev-Yao network intruder — and reports, per
attack: was invalid state installed at any honest replica (must be NO),
and was the attack detected/evidenced (must be YES where the paper claims
detection).
"""

from __future__ import annotations

from repro.bench.metrics import format_table
from repro.core import DEFERRED_SYNCHRONOUS, Community, DictB2BObject, SimRuntime
from repro.errors import ValidationFailed
from repro.faults import (
    DivergentBody,
    DolevYaoIntruder,
    ForgedCommitAuth,
    MessageRecorder,
    SelectiveCommit,
    SelectiveProposal,
    SuppressCommits,
    SuppressResponses,
    TamperedCommitResponses,
    tamper_body,
)
from repro.protocol.validation import CallbackValidator, Decision


def build(n=3, seed=0):
    names = [f"Org{i + 1}" for i in range(n)]
    community = Community(names, runtime=SimRuntime(seed=seed))
    objects = {name: DictB2BObject() for name in names}
    controllers = community.found_object("shared", objects)
    return community, controllers, objects


def attempt_write(community, controllers, objects, org="Org1",
                  mode=None, **attrs):
    controller = controllers[org]
    if mode:
        controller.mode = mode
    controller.enter()
    controller.overwrite()
    for key, value in attrs.items():
        objects[org].set_attribute(key, value)
    try:
        ticket = controller.leave()
        return ticket
    except ValidationFailed:
        return None
    finally:
        community.settle(3.0)


def honest_state_clean(community, honest, forbidden_key="x"):
    for org in honest:
        engine = community.node(org).party.session("shared").state
        if forbidden_key in (engine.agreed_state or {}):
            return False
    return True


def detected(community, honest, kinds):
    reports = []
    for org in honest:
        reports.extend(r.kind for r in community.node(org).misbehaviour_reports)
    return any(kind in reports for kind in kinds)


def run_attacks():
    rows = []

    # -- omission of m3 --------------------------------------------------
    community, controllers, objects = build(seed=1)
    SuppressCommits(community.node("Org1"))
    attempt_write(community, controllers, objects, x=1)
    safe = honest_state_clean(community, ["Org2", "Org3"])
    blocked = community.node("Org2").party.session("shared").state.busy
    rows.append(["proposer omits m3", safe, blocked,
                 "responders hold evidence run is active"])
    assert safe and blocked

    # -- omission of m2 --------------------------------------------------
    community, controllers, objects = build(n=2, seed=2)
    SuppressResponses(community.node("Org2"))
    ticket = attempt_write(community, controllers, objects,
                           mode=DEFERRED_SYNCHRONOUS, x=1)
    safe = honest_state_clean(community, ["Org2"])
    rows.append(["recipient omits m2", safe, ticket is not None
                 and not ticket.done,
                 "recipient cannot demonstrate validity"])
    assert safe

    # -- selective m1 ------------------------------------------------------
    community, controllers, objects = build(seed=3)
    SelectiveProposal(community.node("Org1"), excluded=["Org3"])
    ticket = attempt_write(community, controllers, objects,
                           mode=DEFERRED_SYNCHRONOUS, x=1)
    safe = honest_state_clean(community, ["Org3"])
    rows.append(["selective send of m1", safe, not ticket.done,
                 "no unanimous decision reachable"])
    assert safe and not ticket.done

    # -- selective m3 ------------------------------------------------------
    community, controllers, objects = build(seed=4)
    SelectiveCommit(community.node("Org1"), excluded=["Org3"])
    attempt_write(community, controllers, objects, x=1)
    engine3 = community.node("Org3").party.session("shared").state
    rows.append(["selective send of m3", True, engine3.busy,
                 "excluded member can show run active; peers can relay m3"])
    assert engine3.busy

    # -- divergent bodies ---------------------------------------------------
    community, controllers, objects = build(seed=5)
    DivergentBody(community.node("Org1"), victim="Org2")
    attempt_write(community, controllers, objects, x=1)
    safe = honest_state_clean(community, ["Org2", "Org3"])
    seen = detected(community, ["Org2", "Org3"], ["selective-send"])
    rows.append(["divergent proposal bodies", safe, seen,
                 "body-hash assertions expose divergence"])
    assert safe and seen

    # -- forged commit authenticator ----------------------------------------
    community, controllers, objects = build(n=2, seed=6)
    ForgedCommitAuth(community.node("Org1"))
    attempt_write(community, controllers, objects, x=1)
    safe = honest_state_clean(community, ["Org2"])
    seen = detected(community, ["Org2"], ["forged-commit"])
    rows.append(["forged commit authenticator", safe, seen,
                 "preimage check against signed commitment"])
    assert safe and seen

    # -- veto flipped inside the bundle ---------------------------------------
    community, controllers, objects = build(seed=7)
    community.node("Org3").party.session("shared").state.validator = (
        CallbackValidator(state=lambda p, c, pr: Decision.reject("veto"))
    )
    TamperedCommitResponses(community.node("Org1"))
    attempt_write(community, controllers, objects, x=1)
    safe = honest_state_clean(community, ["Org2", "Org3"])
    seen = detected(community, ["Org2", "Org3"], ["invalid-signature"])
    rows.append(["veto flipped in evidence bundle", safe, seen,
                 "responder signatures no longer verify"])
    assert safe and seen

    # -- replayed proposal ---------------------------------------------------
    community, controllers, objects = build(n=2, seed=8)
    recorder = MessageRecorder(community.node("Org1"), msg_type="propose")
    attempt_write(community, controllers, objects, y=1)
    before = community.node("Org2").party.session("shared").state.agreed_sid
    recorder.replay()
    community.settle(2.0)
    after = community.node("Org2").party.session("shared").state.agreed_sid
    rows.append(["replay of prior m1", before == after, True,
                 "engine-level idempotence by unique run tuple"])
    assert before == after

    # -- null transition -------------------------------------------------------
    community, controllers, objects = build(n=2, seed=9)
    attempt_write(community, controllers, objects, z=1)
    rejected = attempt_write(community, controllers, objects, z=1) is None
    rows.append(["null state transition", True, rejected,
                 "S_new == S_current detected on receipt of m1"])
    assert rejected

    # -- Dolev-Yao body tampering -----------------------------------------------
    community, controllers, objects = build(n=2, seed=10)
    intruder = DolevYaoIntruder(community.runtime.network)
    intruder.rewrite_payloads(tamper_body)
    attempt_write(community, controllers, objects, x=1)
    safe = honest_state_clean(community, ["Org2"])
    rows.append(["Dolev-Yao rewrites unsigned body", safe,
                 intruder.modified > 0,
                 "hash mismatch with signed identifier"])
    assert safe

    return rows


def test_c3_safety_under_attack(benchmark, report):
    rows = run_attacks()

    # Benchmark: detection cost — one divergent-body attack round.
    seeds = iter(range(100, 1_000_000))

    def one_attack_round():
        community, controllers, objects = build(seed=next(seeds))
        DivergentBody(community.node("Org1"), victim="Org2")
        attempt_write(community, controllers, objects, x=1)

    benchmark.pedantic(one_attack_round, rounds=10, iterations=1)

    table = format_table(
        ["attack (section 4.4)", "safety held", "detected/blocked", "mechanism"],
        rows,
    )
    body = table + (
        "\n\nno honest replica installed invalid state under any attack: yes"
    )
    report("C3", "safety under misbehaviour and intruders", body)
