"""Experiment C15 — binary wire codec and the selector reactor.

The m1/m2/m3 hot path used to serialise every envelope as a canonical
JSON line (base64-inflated signature bytes, recursive dict walks) and
spend one thread per peer connection.  This bench quantifies both halves
of the ISSUE 8 tentpole on *representative traffic* — envelopes captured
from a real 3-party coordination run, not synthetic dicts:

* **codec micro-bench** — encode+decode throughput and frame size for
  the binary codec vs the canonical-JSON encoder over the captured
  m1/m2/m3 envelopes.  Expected: >=2x the round-trip throughput and
  >=25% fewer bytes (signature values ride as raw bytes instead of
  base64 text).
* **transport macro-bench** — a 16-party fan-out workload over real
  loopback sockets: the selector reactor (one event-loop thread) must
  sustain at least the pooled mode's msgs/s while running strictly
  fewer threads.

Writes ``benchmarks/results/BENCH_wire_codec.json`` for CI trend
tracking; ``REPRO_BENCH_SMOKE=1`` shrinks the workload for the CI smoke
gate.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime
from repro.transport.base import Envelope, NetworkFilter
from repro.transport.reliable import ReliableEndpoint
from repro.transport.tcp import SelectorReactorNetwork, TcpNetwork
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from repro.wire import CODEC_BINARY, CODEC_JSON, EnvelopeEncoder, FrameDecoder

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

CODEC_ITERATIONS = 40 if SMOKE else 400
CODEC_REPEATS = 5
FANOUT_PEERS = 16
FANOUT_MESSAGES = 120 if SMOKE else 960
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class _CaptureFilter(NetworkFilter):
    """Record every DATA envelope crossing the simulated network."""

    def __init__(self) -> None:
        self.envelopes: "list[Envelope]" = []

    def on_send(self, envelope):
        if envelope.payload.get("type") == "data":
            self.envelopes.append(envelope)
        return envelope


def capture_protocol_envelopes() -> "list[Envelope]":
    """Representative m1/m2/m3 traffic from a real coordination run."""
    runtime = SimRuntime(seed=15)
    capture = _CaptureFilter()
    runtime.network.add_filter(capture)
    try:
        names = ["Org1", "Org2", "Org3"]
        community = Community(names, runtime=runtime,
                              retransmit_interval=0.2)
        objects = {name: DictB2BObject() for name in names}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org1"]
        for i in range(3):
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute("k", i)
            controller.leave()
        runtime.settle(None)
    finally:
        runtime.close()
    assert capture.envelopes, "no protocol traffic captured"
    return capture.envelopes


def _seed_json_path(envelopes: "list[Envelope]"):
    """The wire path this PR replaces: one canonical-JSON line per
    envelope, fully re-encoded per peer (no payload memo), received
    through the old buffered newline-splitting loop."""
    frames = [canonical_bytes(e.to_dict()) + b"\n" for e in envelopes]

    def round_trip() -> None:
        buffer = bytearray()
        for envelope in envelopes:
            buffer += canonical_bytes(envelope.to_dict()) + b"\n"
            newline = buffer.find(b"\n")
            frame = bytes(buffer[:newline])
            del buffer[:newline + 1]
            from_canonical_bytes(frame)

    return "json-lines (seed)", frames, round_trip


def _wire_path(codec: str, envelopes: "list[Envelope]"):
    """The new wire path: one :class:`EnvelopeEncoder` per connection
    (so the encode-once broadcast memo is live, exactly as in the
    transport) feeding a :class:`FrameDecoder`."""
    encoder = EnvelopeEncoder(codec)
    frames = [encoder.encode(envelope) for envelope in envelopes]

    def round_trip() -> None:
        sender = EnvelopeEncoder(codec)
        decoder = FrameDecoder()
        decoder.feed(sender.preamble)
        for envelope in envelopes:
            decoder.feed(sender.encode(envelope))
            decoder.decode(decoder.next_frame())

    return codec, frames, round_trip


def _measure_paths(envelopes: "list[Envelope]", paths) -> "list[dict]":
    """Time each path's round_trip, interleaved best-of-k.

    Interleaving the repeat windows (A B C, A B C, ...) and keeping
    each path's fastest window makes the reported *ratios* robust
    against CPU frequency drift and GC pauses, which on a shared
    machine are larger than the differences being asserted.
    """
    for _, _, round_trip in paths:
        round_trip()  # warm up
    best = {label: float("inf") for label, _, _ in paths}
    for _ in range(CODEC_REPEATS):
        for label, _, round_trip in paths:
            start = time.perf_counter()
            for _ in range(CODEC_ITERATIONS):
                round_trip()
            best[label] = min(best[label], time.perf_counter() - start)
    count = CODEC_ITERATIONS * len(envelopes)
    results = []
    for label, frames, _ in paths:
        total_bytes = sum(len(frame) for frame in frames)
        results.append({
            "path": label,
            "envelopes": len(envelopes),
            "total_frame_bytes": total_bytes,
            "mean_frame_bytes": total_bytes / len(envelopes),
            "round_trips": count,
            "seconds": best[label],
            "round_trips_per_sec": count / best[label],
        })
    return results


def test_c15_codec_throughput_and_size(report):
    """Binary vs canonical-JSON framing on captured protocol traffic."""
    envelopes = capture_protocol_envelopes()
    # Sanity: the JSON frame path must be byte-identical to the original
    # canonical-lines wire format, or the speedup is measuring a
    # different protocol.
    json_encoder = EnvelopeEncoder(CODEC_JSON)
    for envelope in envelopes:
        assert (json_encoder.encode(envelope)
                == canonical_bytes(envelope.to_dict()) + b"\n")
    # And the binary codec must carry the identical envelope content.
    binary_encoder = EnvelopeEncoder(CODEC_BINARY)
    decoder = FrameDecoder()
    decoder.feed(binary_encoder.preamble)
    for envelope in envelopes:
        decoder.feed(binary_encoder.encode(envelope))
        decoded = decoder.decode(decoder.next_frame())
        assert decoded == from_canonical_bytes(
            canonical_bytes(envelope.to_dict()))

    seed_result, json_result, binary_result = _measure_paths(envelopes, [
        _seed_json_path(envelopes),
        _wire_path(CODEC_JSON, envelopes),
        _wire_path(CODEC_BINARY, envelopes),
    ])
    # Headline comparison: the binary wire path as it actually runs
    # (shared per-connection encoder, broadcast memo live) against the
    # wire path it replaces (a fresh canonical-JSON line per peer).
    # The json row shows how much of that the JSON framing rewrite
    # alone recovers for peers that stay on the JSON codec.
    speedup = (binary_result["round_trips_per_sec"]
               / seed_result["round_trips_per_sec"])
    size_ratio = (binary_result["total_frame_bytes"]
                  / seed_result["total_frame_bytes"])

    rows = [
        [r["path"], r["envelopes"], r["mean_frame_bytes"],
         r["round_trips_per_sec"]]
        for r in (seed_result, json_result, binary_result)
    ]
    body = format_table(
        ["wire path", "captured envelopes", "mean frame bytes",
         "encode+decode round trips/sec"],
        rows,
    ) + (f"\n\nbinary path vs seed json-lines: {speedup:.2f}x"
         f"\nbinary bytes vs JSON: {size_ratio:.2%}"
         f" ({1 - size_ratio:.1%} smaller)")
    report("C15", "binary wire codec vs canonical JSON lines", body)

    _write_results("codec", {
        "json_seed": seed_result,
        "json": json_result,
        "binary": binary_result,
        "binary_speedup": speedup,
        "binary_size_ratio": size_ratio,
    })
    # The tentpole's reason to exist: a wire path that is not clearly
    # faster *and* smaller on real traffic is not worth a second wire
    # format.  The smoke gate's 40-iteration windows wobble a few
    # percent on shared CI runners, so it gets headroom; the full run
    # (10x longer windows) holds the 2x line.
    floor = 1.7 if SMOKE else 2.0
    assert speedup >= floor, f"binary wire path only {speedup:.2f}x over JSON"
    assert size_ratio <= 0.75, (
        f"binary frames only {1 - size_ratio:.1%} smaller than JSON"
    )


def _measure_fanout(network_factory, label: str) -> dict:
    """One sender fanning out to FANOUT_PEERS-1 receivers over TCP."""
    network = network_factory()
    try:
        names = [f"P{i}" for i in range(FANOUT_PEERS)]
        received = [0]
        done = threading.Event()
        lock = threading.Lock()
        receivers_needed = (FANOUT_PEERS - 1)
        per_peer = FANOUT_MESSAGES // receivers_needed
        expected = per_peer * receivers_needed

        def on_message(peer, payload):
            with lock:
                received[0] += 1
                if received[0] >= expected:
                    done.set()

        endpoints = {}
        for name in names:
            endpoint = ReliableEndpoint(name, network,
                                        retransmit_interval=0.5)
            endpoint.on_message(on_message)
            endpoints[name] = endpoint
        sender = endpoints["P0"]
        payload_pad = "x" * 64

        peak_threads = threading.active_count()
        start = time.perf_counter()
        for round_index in range(per_peer):
            # One shared payload dict per round: the broadcast shape the
            # encode-once path recognises.
            payload = {"round": round_index, "pad": payload_pad}
            for name in names[1:]:
                sender.send(name, payload)
            peak_threads = max(peak_threads, threading.active_count())
        assert done.wait(120.0), "fan-out workload did not complete"
        elapsed = time.perf_counter() - start
        peak_threads = max(peak_threads, threading.active_count())

        deadline = time.monotonic() + 20.0
        while sender.outstanding_count() and time.monotonic() < deadline:
            time.sleep(0.01)
        for endpoint in endpoints.values():
            endpoint.stop()
        return {
            "mode": label,
            "peers": FANOUT_PEERS,
            "messages": expected,
            "seconds": elapsed,
            "msgs_per_sec": expected / elapsed,
            "peak_threads": peak_threads,
            "retransmissions": sender.retransmissions,
        }
    finally:
        network.close()


def test_c15b_reactor_vs_pooled_fanout(report):
    """One event-loop thread vs thread-per-peer at 16 parties."""
    pooled = _measure_fanout(lambda: TcpNetwork(pooled=True),
                             "pooled/json")
    reactor = _measure_fanout(
        lambda: SelectorReactorNetwork(codec="binary"), "reactor/binary")
    ratio = reactor["msgs_per_sec"] / pooled["msgs_per_sec"]

    rows = [
        [r["mode"], r["peers"], r["messages"], r["msgs_per_sec"],
         r["peak_threads"], r["retransmissions"]]
        for r in (pooled, reactor)
    ]
    body = format_table(
        ["mode", "peers", "messages", "msgs/sec", "peak threads",
         "retransmissions"],
        rows,
    ) + (f"\n\nreactor/pooled throughput: {ratio:.2f}x with "
         f"{pooled['peak_threads'] - reactor['peak_threads']} fewer "
         f"threads")
    report("C15b", "selector reactor vs pooled thread-per-peer", body)

    _write_results("fanout", {
        "pooled": pooled,
        "reactor": reactor,
        "reactor_throughput_ratio": ratio,
    })
    # The reactor's pitch: same throughput, constant thread count.  The
    # pooled mode runs a writer per peer, a server thread per accepted
    # connection, listener accept loops and a timer thread; the reactor
    # runs exactly one loop.
    assert reactor["peak_threads"] < pooled["peak_threads"], (
        f"reactor used {reactor['peak_threads']} threads vs pooled "
        f"{pooled['peak_threads']}"
    )
    floor = 0.6 if SMOKE else 0.9
    assert ratio >= floor, (
        f"reactor sustained only {ratio:.2f}x of pooled throughput"
    )


def _write_results(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_wire_codec.json`` (tests may run
    individually, so the artifact is updated incrementally)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_wire_codec.json")
    merged = {"experiment": "C15", "smoke": SMOKE}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                merged.update(json.load(handle))
        except (OSError, ValueError):
            pass
    merged["smoke"] = SMOKE
    merged[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
