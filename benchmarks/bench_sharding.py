"""Experiment C16 — multi-object shard scheduler scale-out.

One :class:`~repro.core.node.OrganisationNode` used to coordinate one
run at a time however many independent B2BObjects it hosted.  The shard
scheduler (``repro.core.shards``) partitions objects across shards, each
with its own engine lock, worker thread and pipeline group, so
independent objects' m1/m2/m3 runs proceed concurrently.

This bench drives the scaling curve the ISSUE 9 tentpole claims on a
64-object, 3-party workload over the reactor transport (binary codec):
aggregate settled updates/s as the shard count grows.  ``shard_run_slots
= 1`` makes the shard the unit of in-flight-run concurrency — one shard
coordinates strictly serially, eight shards keep eight runs in flight —
so the curve isolates the latency-hiding the scheduler buys, not
incidental CPU parallelism (the suite runs on one core).

The workload object models what dominates real inter-organisation
validation latency: an application-level policy check (a database
lookup, a stock or credit query) that *waits* rather than computes.
Each ``validate_update`` blocks for ``VALIDATION_DELAY`` without holding
the interpreter lock.  A single shard — the pre-scheduler architecture,
where one dispatch path handles every object inline — pays those waits
end to end; with N shards the waits of N independent runs overlap, which
is exactly the concurrency the scheduler exists to reclaim.

Also exercises the cross-shard composite transaction under concurrent
per-child traffic: the transaction must settle atomically (no partial
child application) while ordinary updates race its children.

Writes ``benchmarks/results/BENCH_sharding.json`` for CI trend
tracking; ``REPRO_BENCH_SMOKE=1`` shrinks the workload for the CI smoke
gate (the >=2x scaling floor is asserted only in full runs — smoke
windows are too short for stable wall-clock ratios).
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, ThreadedRuntime
from repro.core.object import B2BObject
from repro.transport.tcp import TcpNetwork

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

PARTIES = 3
OBJECTS = 16 if SMOKE else 64
UPDATES_PER_OBJECT = 2 if SMOKE else 4
SHARD_COUNTS = (1, 4) if SMOKE else (1, 2, 4, 8)
#: Wall-clock cost of one application-level validation (policy lookup).
VALIDATION_DELAY = 0.003 if SMOKE else 0.012
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class PolicyCheckObject(B2BObject):
    """Dict-merge object whose validation waits on a policy check."""

    def __init__(self, delay: float = VALIDATION_DELAY) -> None:
        super().__init__()
        self._state: dict = {}
        self._delay = delay

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state) -> None:
        self._state = dict(state)

    def merge_update(self, state, update):
        merged = dict(state)
        merged.update(update)
        return merged

    def validate_update(self, update, resulting, current, proposer):
        from repro.protocol.validation import Decision

        time.sleep(self._delay)  # the external lookup; GIL released
        return Decision.accept()


class CounterObject(B2BObject):
    """Additive merge: every applied update is visible in the state."""

    def __init__(self) -> None:
        super().__init__()
        self._state = {"applied": 0, "total": 0}

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state) -> None:
        self._state = dict(state)

    def merge_update(self, state, update):
        amount = int(update.get("n", 1)) if isinstance(update, dict) else 1
        return {"applied": state["applied"] + 1,
                "total": state["total"] + amount}


def _build_community(num_shards: int, objects: "list[str]",
                     obj_cls=DictB2BObject) -> Community:
    names = [f"Org{i + 1}" for i in range(PARTIES)]
    runtime = ThreadedRuntime(TcpNetwork(reactor=True, codec="binary"))
    community = Community(names, runtime=runtime,
                          retransmit_interval=0.5,
                          num_shards=num_shards,
                          shard_run_slots=1)
    for object_name in objects:
        community.found_object(object_name,
                               {name: obj_cls() for name in names})
    return community


def _measure_scaleout(num_shards: int) -> dict:
    """Aggregate settled updates/s at one shard count."""
    objects = [f"obj-{i}" for i in range(OBJECTS)]
    community = _build_community(num_shards, objects,
                                 obj_cls=PolicyCheckObject)
    try:
        node = community.node("Org1")
        spread = node.shards.map.spread(objects)
        tickets = []
        start = time.perf_counter()
        for round_index in range(UPDATES_PER_OBJECT):
            for object_name in objects:
                tickets.append(node.submit_update(
                    object_name, {f"r{round_index}": round_index}))
        settled = community.runtime.wait_until(
            lambda: all(t.done for t in tickets), timeout=240.0)
        elapsed = time.perf_counter() - start
        assert settled, (
            f"{sum(1 for t in tickets if not t.done)} of {len(tickets)} "
            f"updates unsettled at {num_shards} shards"
        )
        assert all(t.valid for t in tickets), "updates vetoed unexpectedly"
        return {
            "shards": num_shards,
            "shards_used": len(spread),
            "workers": node.shards.workers,
            "objects": OBJECTS,
            "parties": PARTIES,
            "updates": len(tickets),
            "seconds": elapsed,
            "settled_per_sec": len(tickets) / elapsed,
        }
    finally:
        community.close()


def test_c16_shard_scaleout(report):
    """Settled updates/s vs shard count, 64 objects x 3 parties."""
    results = [_measure_scaleout(n) for n in SHARD_COUNTS]
    base = results[0]["settled_per_sec"]
    for result in results:
        result["speedup"] = result["settled_per_sec"] / base

    rows = [
        [r["shards"], r["shards_used"], r["objects"], r["updates"],
         r["seconds"], r["settled_per_sec"], f"{r['speedup']:.2f}x"]
        for r in results
    ]
    body = format_table(
        ["shards", "used", "objects", "updates", "seconds",
         "settled/s", "speedup"],
        rows,
    )
    report("C16", "multi-object shard scheduler scale-out", body)
    _write_results("scaleout", {
        "results": results,
        "max_speedup": results[-1]["speedup"],
    })
    # The tentpole claim: >=2x aggregate settled updates/s at 8 shards
    # vs 1 on the 64-object 3-party workload.  Smoke runs keep the
    # workload too short for stable wall-clock ratios, so the floor is
    # asserted only on full runs (matching C15's precedent).
    if not SMOKE:
        speedup = results[-1]["speedup"]
        assert speedup >= 2.0, (
            f"{SHARD_COUNTS[-1]} shards reached only {speedup:.2f}x the "
            f"single-shard settled-update throughput"
        )


def test_c16b_cross_shard_transaction_atomicity(report):
    """A composite transaction stays atomic under per-child traffic."""
    children = ["tx-alpha", "tx-beta", "tx-gamma"]
    side_updates = 2 if SMOKE else 5
    community = _build_community(4 if SMOKE else 8, children,
                                 obj_cls=CounterObject)
    try:
        submitter = community.node("Org1")
        rival = community.node("Org2")
        spread = submitter.shards.map.spread(children)
        side = [rival.submit_update(name, {"n": 1})
                for name in children for _ in range(side_updates)]
        ticket = submitter.submit_composite(
            {name: {"n": 100} for name in children})
        assert not ticket.aborted, ticket.diagnostics
        done = community.runtime.wait_until(
            lambda: ticket.done and all(t.done for t in side),
            timeout=120.0)
        assert done, "transaction or side traffic did not settle"
        assert ticket.valid, ticket.child_diagnostics()
        assert not ticket.partial, "partial child application observed"
        expected = {"applied": side_updates + 1,
                    "total": side_updates + 100}
        states = {}
        for name in children:
            state = submitter.controllers[name].b2b_object.get_state()
            states[name] = state
            assert state == expected, (
                f"{name} diverged under concurrent traffic: {state}"
            )
        rows = [[name, submitter.shards.map.shard_of(name),
                 states[name]["applied"], states[name]["total"]]
                for name in children]
        body = format_table(
            ["child", "shard", "applied", "total"], rows,
        ) + (f"\n\ncross-shard children over {len(spread)} shards settled "
             f"atomically under {len(side)} concurrent rival updates")
        report("C16b", "cross-shard transaction atomicity", body)
        _write_results("transaction", {
            "children": len(children),
            "shards_used": len(spread),
            "side_updates": len(side),
            "partial": ticket.partial,
            "valid": bool(ticket.valid),
        })
    finally:
        community.close()


def _write_results(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_sharding.json`` (tests may run
    individually, so the artifact is updated incrementally)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_sharding.json")
    merged = {"experiment": "C16", "smoke": SMOKE}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                merged.update(json.load(handle))
        except (OSError, ValueError):
            pass
    merged["smoke"] = SMOKE
    merged[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
