"""Experiment F6 — Figure 6: Tic-Tac-Toe through a trusted third party.

The same game as Figure 5, but each player shares a two-party object with
a TTP that validates every move before it is disclosed to the opponent.

Measured: per-move message cost and latency, direct vs via-TTP; and the
conditional-disclosure property — an invalid move is vetoed at the TTP
and the opponent's replica never sees it.
"""

from __future__ import annotations

from repro.agents import ValidatingTTP
from repro.apps.tictactoe import CROSS, EMPTY, NOUGHT, TicTacToeObject, TicTacToePlayer
from repro.bench.metrics import format_table
from repro.core import Community, SimRuntime
from repro.errors import ValidationFailed

PLAYERS = {"Cross": CROSS, "Nought": NOUGHT}


def build_direct(seed=0):
    community = Community(["Cross", "Nought"], runtime=SimRuntime(seed=seed))
    objects = {n: TicTacToeObject(PLAYERS) for n in community.names()}
    controllers = community.found_object("game", objects)
    return (community,
            TicTacToePlayer(controllers["Cross"], CROSS),
            TicTacToePlayer(controllers["Nought"], NOUGHT),
            {"Cross": objects["Cross"], "Nought": objects["Nought"]})


def build_ttp(seed=0):
    community = Community(["Cross", "Nought", "TTP"],
                          runtime=SimRuntime(seed=seed))
    side_c = {n: TicTacToeObject(PLAYERS) for n in ["Cross", "TTP"]}
    side_n = {n: TicTacToeObject(PLAYERS) for n in ["TTP", "Nought"]}
    ctrl_c = community.found_object("game_c", side_c)
    ctrl_n = community.found_object("game_n", side_n)
    ValidatingTTP(community.node("TTP"), ["game_c", "game_n"])
    return (community,
            TicTacToePlayer(ctrl_c["Cross"], CROSS),
            TicTacToePlayer(ctrl_n["Nought"], NOUGHT),
            {"Cross": side_c["Cross"], "Nought": side_n["Nought"]})


def play_three_moves(community, cross, nought, objects):
    def converged(cell, mark):
        return lambda: all(obj.board[cell] == mark
                           for obj in objects.values())

    cross.save_move(4)
    community.runtime.wait_until(converged(4, CROSS), timeout=30.0)
    nought.save_move(0)
    community.runtime.wait_until(converged(0, NOUGHT), timeout=30.0)
    cross.save_move(5)
    community.runtime.wait_until(converged(5, CROSS), timeout=30.0)


def measure(build, label, seed):
    community, cross, nought, objects = build(seed)
    network = community.runtime.network
    before = network.stats.delivered
    start = network.now()
    play_three_moves(community, cross, nought, objects)
    return {
        "deployment": label,
        "messages_per_move": (network.stats.delivered - before) / 3,
        "virtual_seconds_per_move": (network.now() - start) / 3,
        "objects": objects,
        "community": community,
        "players": (cross, nought),
    }


def test_fig6_ttp_mediated_game(benchmark, report):
    direct = measure(build_direct, "direct (Fig 5)", seed=1)
    mediated = measure(build_ttp, "via TTP (Fig 6)", seed=2)

    # Both deployments agree on the played board.
    for result in (direct, mediated):
        boards = {tuple(obj.board) for obj in result["objects"].values()}
        assert len(boards) == 1

    # Conditional disclosure: an invalid move is vetoed at the TTP and
    # never reaches the opponent.
    community = mediated["community"]
    cross, nought = mediated["players"]
    try:
        nought.save_move(4)  # square already claimed
        cheat_blocked = False
    except ValidationFailed:
        cheat_blocked = True
    community.settle(5.0)
    assert cheat_blocked
    assert mediated["objects"]["Cross"].board[4] == CROSS

    seeds = iter(range(100, 1_000_000))

    def one_mediated_move():
        com, cr, _no, _objs = build_ttp(seed=next(seeds))
        cr.save_move(4)
        com.settle(5.0)

    benchmark.pedantic(one_mediated_move, rounds=10, iterations=1)

    factor = mediated["messages_per_move"] / direct["messages_per_move"]
    rows = [
        [d["deployment"], d["messages_per_move"],
         d["virtual_seconds_per_move"]]
        for d in (direct, mediated)
    ]
    body = format_table(
        ["deployment", "msgs/move", "virtual s/move"], rows
    ) + (
        f"\n\nTTP mediation overhead factor: {factor:.2f}x\n"
        "invalid move vetoed at TTP, never disclosed to opponent: "
        f"{cheat_blocked}"
    )
    report("F6", "Tic-Tac-Toe through a TTP", body)
    assert factor > 1.5
