"""Experiment C11 — the real-network prototype (section 5).

The paper's prototype ran over Java RMI between organisations; ours runs
the identical protocol stack over loopback TCP (stdlib sockets) or the
deterministic simulator.  This bench characterises the real-transport
cost: wall-clock time per coordination run over TCP, compared with the
same run driven on the in-memory simulator, for 2 and 3 parties.

Expected shape: both transports agree on semantics (same outcomes, same
evidence); TCP adds real socket/thread latency per run but stays in the
tens of milliseconds on loopback.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime, ThreadedRuntime
from repro.transport.reliable import ReliableEndpoint
from repro.transport.tcp import TcpNetwork

#: ``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI can run this bench
#: on every push and still produce the comparison JSON artifact.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

RUNS = 3 if SMOKE else 10
THROUGHPUT_MESSAGES = 100 if SMOKE else 400
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_over(runtime_factory, n_parties, seed=0):
    runtime = runtime_factory()
    try:
        names = [f"Org{i + 1}" for i in range(n_parties)]
        community = Community(names, runtime=runtime,
                              retransmit_interval=0.2)
        objects = {name: DictB2BObject() for name in names}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org1"]
        start = time.perf_counter()
        for i in range(RUNS):
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute("k", i)
            controller.leave()
        elapsed = (time.perf_counter() - start) / RUNS
        runtime.settle(0.2 if isinstance(runtime, ThreadedRuntime) else None)
        for name in names:
            assert objects[name].get_attribute("k") == RUNS - 1, name
        evidence_ok = all(
            community.node(name).ctx.evidence.verify_chain() > 0
            for name in names
        )
        return elapsed, evidence_ok
    finally:
        runtime.close()


def test_c11_tcp_vs_simulator(benchmark, report):
    rows = []
    seeds = iter(range(1, 100))
    for n in (2, 3):
        sim_time, sim_ok = run_over(
            lambda: SimRuntime(seed=next(seeds)), n)
        tcp_time, tcp_ok = run_over(ThreadedRuntime, n)
        assert sim_ok and tcp_ok
        rows.append([n, sim_time * 1e3, tcp_time * 1e3,
                     tcp_time / sim_time])

    # Benchmark one 2-party coordination run over real TCP.
    runtime = ThreadedRuntime()
    try:
        community = Community(["Org1", "Org2"], runtime=runtime,
                              retransmit_interval=0.2)
        objects = {n: DictB2BObject() for n in ["Org1", "Org2"]}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org1"]
        counter = iter(range(1_000_000))

        def one_tcp_run():
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute("k", next(counter))
            controller.leave()

        benchmark.pedantic(one_tcp_run, rounds=15, iterations=1)
    finally:
        runtime.close()

    body = format_table(
        ["parties", "simulator wall ms/run", "TCP loopback wall ms/run",
         "TCP/simulator"],
        rows,
    ) + ("\n\nidentical outcomes and verified evidence chains on both "
         "transports: yes")
    report("C11", "real TCP transport vs simulator", body)


def _measure_throughput(pooled: bool, messages: int) -> dict:
    """Messages/second for a reliable A->B stream over one TCP mode."""
    network = TcpNetwork(pooled=pooled)
    try:
        delivered = threading.Event()
        count = [0]
        lock = threading.Lock()
        sender = ReliableEndpoint("A", network, retransmit_interval=0.5)
        receiver = ReliableEndpoint("B", network, retransmit_interval=0.5)

        def on_message(peer, payload):
            with lock:
                count[0] += 1
                if count[0] >= messages:
                    delivered.set()

        receiver.on_message(on_message)
        start = time.perf_counter()
        for i in range(messages):
            sender.send("B", {"i": i, "pad": "x" * 64})
        assert delivered.wait(60.0), "throughput workload did not complete"
        elapsed = time.perf_counter() - start
        # Let acks drain so the retransmit timers stop cleanly.
        deadline = time.monotonic() + 10.0
        while sender.outstanding_count() and time.monotonic() < deadline:
            time.sleep(0.01)
        sender.stop()
        receiver.stop()
        return {
            "mode": "pooled" if pooled else "per-message",
            "messages": messages,
            "seconds": elapsed,
            "msgs_per_sec": messages / elapsed,
            "retransmissions": sender.retransmissions,
        }
    finally:
        network.close()


def test_c11b_pooled_vs_per_message(report):
    """Tentpole comparison: persistent pool vs connection-per-message.

    Writes ``benchmarks/results/BENCH_tcp_transport.json`` so CI can track
    the perf trajectory of the transport across commits.
    """
    per_message = _measure_throughput(pooled=False,
                                      messages=THROUGHPUT_MESSAGES)
    pooled = _measure_throughput(pooled=True, messages=THROUGHPUT_MESSAGES)
    speedup = pooled["msgs_per_sec"] / per_message["msgs_per_sec"]

    comparison = {
        "experiment": "C11b",
        "workload": f"{THROUGHPUT_MESSAGES} reliable A->B messages, "
                    f"loopback TCP",
        "smoke": SMOKE,
        "per_message": per_message,
        "pooled": pooled,
        "pooled_speedup": speedup,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_tcp_transport.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(comparison, handle, indent=2, sort_keys=True)

    rows = [
        [result["mode"], result["messages"], result["seconds"] * 1e3,
         result["msgs_per_sec"], result["retransmissions"]]
        for result in (per_message, pooled)
    ]
    body = format_table(
        ["mode", "messages", "wall ms", "msgs/sec", "retransmissions"],
        rows,
    ) + (f"\n\npooled speedup over per-message: {speedup:.2f}x"
         f"\ncomparison JSON: {json_path}")
    report("C11b", "pooled vs per-message TCP throughput", body)
    # The persistent pool exists to amortise the 3(n-1) handshakes per
    # round; anything under 2x means the pool is not actually persisting.
    assert speedup >= 2.0, (
        f"pooled mode only {speedup:.2f}x over per-message"
    )
