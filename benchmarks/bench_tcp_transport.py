"""Experiment C11 — the real-network prototype (section 5).

The paper's prototype ran over Java RMI between organisations; ours runs
the identical protocol stack over loopback TCP (stdlib sockets) or the
deterministic simulator.  This bench characterises the real-transport
cost: wall-clock time per coordination run over TCP, compared with the
same run driven on the in-memory simulator, for 2 and 3 parties.

Expected shape: both transports agree on semantics (same outcomes, same
evidence); TCP adds real socket/thread latency per run but stays in the
tens of milliseconds on loopback.
"""

from __future__ import annotations

import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime, ThreadedRuntime

RUNS = 10


def run_over(runtime_factory, n_parties, seed=0):
    runtime = runtime_factory()
    try:
        names = [f"Org{i + 1}" for i in range(n_parties)]
        community = Community(names, runtime=runtime,
                              retransmit_interval=0.2)
        objects = {name: DictB2BObject() for name in names}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org1"]
        start = time.perf_counter()
        for i in range(RUNS):
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute("k", i)
            controller.leave()
        elapsed = (time.perf_counter() - start) / RUNS
        runtime.settle(0.2 if isinstance(runtime, ThreadedRuntime) else None)
        for name in names:
            assert objects[name].get_attribute("k") == RUNS - 1, name
        evidence_ok = all(
            community.node(name).ctx.evidence.verify_chain() > 0
            for name in names
        )
        return elapsed, evidence_ok
    finally:
        runtime.close()


def test_c11_tcp_vs_simulator(benchmark, report):
    rows = []
    seeds = iter(range(1, 100))
    for n in (2, 3):
        sim_time, sim_ok = run_over(
            lambda: SimRuntime(seed=next(seeds)), n)
        tcp_time, tcp_ok = run_over(ThreadedRuntime, n)
        assert sim_ok and tcp_ok
        rows.append([n, sim_time * 1e3, tcp_time * 1e3,
                     tcp_time / sim_time])

    # Benchmark one 2-party coordination run over real TCP.
    runtime = ThreadedRuntime()
    try:
        community = Community(["Org1", "Org2"], runtime=runtime,
                              retransmit_interval=0.2)
        objects = {n: DictB2BObject() for n in ["Org1", "Org2"]}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org1"]
        counter = iter(range(1_000_000))

        def one_tcp_run():
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute("k", next(counter))
            controller.leave()

        benchmark.pedantic(one_tcp_run, rounds=15, iterations=1)
    finally:
        runtime.close()

    body = format_table(
        ["parties", "simulator wall ms/run", "TCP loopback wall ms/run",
         "TCP/simulator"],
        rows,
    ) + ("\n\nidentical outcomes and verified evidence chains on both "
         "transports: yes")
    report("C11", "real TCP transport vs simulator", body)
