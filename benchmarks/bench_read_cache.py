"""Experiment C17 — validated read-path cache throughput.

The seed read path (``Controller.enter`` with default semantics) makes
every read quiesce: it waits for in-flight coordination to settle before
looking at the object, so read-heavy inter-organisation workloads pay
coordination-round prices for state that only changes at settlement
boundaries.  The read cache (``repro.core.readcache``) publishes an
immutable validated snapshot at every settlement and serves ``cached``
and ``bounded`` reads from it lock-free.

This bench drives closed-loop read/write mixes (90/10 and 99/1) against
one ledger object on a 3-party community over the reactor transport
(binary codec).  Writes are submitted through the non-blocking pipeline
so reads race genuine in-flight settlements; each mix runs once per
consistency mode and reports reads/s.  Two invariants are asserted in
*every* run, smoke included:

* ``bounded`` reads never exceed their staleness bound (0 violations);
* every reader observes monotonically non-decreasing snapshot versions.

The >=5x cached-vs-settled read-throughput floor on the 90/10 mix is
asserted only in full runs — smoke workloads are too short for stable
wall-clock ratios (C15/C16 precedent).  Writes
``benchmarks/results/BENCH_read_cache.json`` for CI trend tracking.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.metrics import format_table
from repro.core import Community, ThreadedRuntime, bounded, cached, settled
from repro.core.object import B2BObject
from repro.transport.tcp import TcpNetwork

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

PARTIES = 3
OPS = 60 if SMOKE else 400
#: bounded-mode staleness budget (seconds).
BOUND = 0.5
#: Wall-clock cost of one application-level validation (policy lookup).
VALIDATION_DELAY = 0.002 if SMOKE else 0.004
MIXES = ((90, 10), (99, 1))
MODES = (
    ("settled", settled),
    ("bounded", lambda: bounded(BOUND)),
    ("cached", cached),
)
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class LedgerObject(B2BObject):
    """Additive merge whose validation waits on a policy check."""

    def __init__(self, delay: float = VALIDATION_DELAY) -> None:
        super().__init__()
        self._state = {"applied": 0, "total": 0}
        self._delay = delay

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state) -> None:
        self._state = dict(state)

    def merge_update(self, state, update):
        amount = int(update.get("n", 1)) if isinstance(update, dict) else 1
        return {"applied": state["applied"] + 1,
                "total": state["total"] + amount}

    def validate_update(self, update, resulting, current, proposer):
        from repro.protocol.validation import Decision

        time.sleep(self._delay)  # the external lookup; GIL released
        return Decision.accept()


def _build_community() -> Community:
    names = [f"Org{i + 1}" for i in range(PARTIES)]
    runtime = ThreadedRuntime(TcpNetwork(reactor=True, codec="binary"))
    community = Community(names, runtime=runtime,
                          retransmit_interval=0.5)
    community.found_object("ledger",
                           {name: LedgerObject() for name in names})
    return community


def _write_slots(total_ops: int, writes: int) -> "set[int]":
    """Spread *writes* evenly over *total_ops* op slots."""
    if writes == 0:
        return set()
    return {(i * total_ops) // writes for i in range(writes)}


def _measure(read_pct: int, write_pct: int, mode_name: str,
             mode_factory) -> dict:
    """One closed-loop mix run in one consistency mode."""
    writes_target = max(1, (OPS * write_pct) // 100)
    write_slots = _write_slots(OPS, writes_target)
    community = _build_community()
    try:
        node = community.node("Org1")
        tickets = []
        last_version = -1
        reads = hits = stale_violations = mono_violations = 0
        start = time.perf_counter()
        for op in range(OPS):
            if op in write_slots:
                tickets.append(node.submit_update("ledger", {"n": 1}))
                continue
            result = node.examine("ledger", mode_factory())
            reads += 1
            hits += 1 if result.hit else 0
            if result.version < last_version:
                mono_violations += 1
            last_version = max(last_version, result.version)
            if (result.mode.max_staleness is not None
                    and result.staleness > result.mode.max_staleness):
                stale_violations += 1
        elapsed = time.perf_counter() - start
        done = community.runtime.wait_until(
            lambda: all(t.done for t in tickets), timeout=240.0)
        assert done, (
            f"{sum(1 for t in tickets if not t.done)} of {len(tickets)} "
            f"writes unsettled in {mode_name} {read_pct}/{write_pct} run"
        )
        assert all(t.valid for t in tickets), "writes vetoed unexpectedly"
        final = node.examine("ledger", settled())
        assert final.state["total"] == len(tickets), (
            f"settled total {final.state['total']} != {len(tickets)} writes"
        )
        # The always-on invariants: staleness bounds hold and versions
        # never go backwards, smoke or not.
        assert stale_violations == 0, (
            f"{stale_violations} bounded reads exceeded {BOUND}s"
        )
        assert mono_violations == 0, (
            f"{mono_violations} reads observed a version rollback"
        )
        return {
            "mode": mode_name,
            "mix": f"{read_pct}/{write_pct}",
            "reads": reads,
            "writes": len(tickets),
            "hits": hits,
            "hit_rate": (hits / reads) if reads else 0.0,
            "seconds": elapsed,
            "reads_per_sec": reads / elapsed,
            "stale_violations": stale_violations,
            "mono_violations": mono_violations,
            "final_version": final.version,
        }
    finally:
        community.close()


def _run_mix(read_pct: int, write_pct: int, report, label: str,
             assert_floor: bool) -> dict:
    results = {name: _measure(read_pct, write_pct, name, factory)
               for name, factory in MODES}
    base = results["settled"]["reads_per_sec"]
    speedups = {name: results[name]["reads_per_sec"] / base
                for name in ("bounded", "cached")}
    rows = [
        [r["mode"], r["reads"], r["writes"], f"{r['hit_rate']:.2f}",
         r["seconds"], r["reads_per_sec"],
         f"{speedups.get(r['mode'], 1.0):.2f}x",
         r["stale_violations"], r["mono_violations"]]
        for r in results.values()
    ]
    body = format_table(
        ["mode", "reads", "writes", "hit rate", "seconds", "reads/s",
         "speedup", "stale viol", "mono viol"],
        rows,
    ) + (f"\n\n{read_pct}/{write_pct} read/write mix, {PARTIES} parties, "
         f"reactor transport (binary codec), bounded budget {BOUND:g}s")
    report(label, f"validated read cache, {read_pct}/{write_pct} mix", body)
    payload = {
        "results": results,
        "speedup_bounded": speedups["bounded"],
        "speedup_cached": speedups["cached"],
    }
    _write_results(f"mix_{read_pct}_{write_pct}", payload)
    # The tentpole claim: >=5x read throughput for cache-served modes on
    # the 90/10 mix.  Smoke runs keep the workload too short for stable
    # wall-clock ratios, so the floor is asserted only on full runs.
    if assert_floor and not SMOKE:
        for name in ("bounded", "cached"):
            assert speedups[name] >= 5.0, (
                f"{name} reads reached only {speedups[name]:.2f}x the "
                f"settled read throughput on the {read_pct}/{write_pct} mix"
            )
    return payload


def test_c17_read_mix_90_10(report):
    """Reads/s per consistency mode, 90/10 read/write mix."""
    _run_mix(90, 10, report, "C17", assert_floor=True)


def test_c17b_read_mix_99_1(report):
    """Reads/s per consistency mode, 99/1 read/write mix."""
    _run_mix(99, 1, report, "C17b", assert_floor=False)


def _write_results(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_read_cache.json`` (tests may run
    individually, so the artifact is updated incrementally)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_read_cache.json")
    merged = {"experiment": "C17", "smoke": SMOKE}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                merged.update(json.load(handle))
        except (OSError, ValueError):
            pass
    merged["smoke"] = SMOKE
    merged[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
