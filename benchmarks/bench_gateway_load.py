"""Experiment C13 — closed-loop client load through the gateway.

The paper's middleware coordinates a handful of organisations; the
population *behind* each organisation is orders of magnitude larger.
``repro.gateway`` is the front door that makes that population safe to
admit: token-bucket rate limiting, a bounded load-leveling queue,
idempotency keys and a per-object circuit breaker.

This bench drives a closed-loop simulated client population (10^5
clients in the full run) against a two-organisation community over the
in-memory virtual-time transport and reports settled updates/s plus
p50/p95/p99 admission-to-settlement latency from ``repro.obs``.  Three
further phases check the gateway's qualitative claims:

* a handful of *hot* clients are capped by the rate limiter without
  starving the rest of the population;
* a crash-induced degradation trips the circuit breaker open, and
  half-open probes close it again once the community recovers;
* duplicate submissions under the same idempotency keys are never
  applied twice (the shared counter's additive merge would expose it).

Results land in ``benchmarks/results/BENCH_gateway_load.json`` so CI
can track gateway throughput across commits.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.metrics import format_table
from repro.faults import FaultSchedule
from repro.gateway import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    LoadSimConfig,
    build_gateway_community,
    run_load_sim,
)
from repro.obs.recording import RecordingInstrumentation

#: ``REPRO_BENCH_SMOKE=1`` shrinks the population so CI can run this
#: bench on every push and still produce the JSON artifact.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

CLIENTS = 2_000 if SMOKE else 100_000
ARRIVAL_WINDOW = 2.0 if SMOKE else 100.0
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Floor asserted on virtual-time throughput for the headline phase —
#: batching must keep the community far above one-update-per-run pace.
MIN_UPDATES_PER_VIRTUAL_S = 200.0


def _gateway_percentiles(registry) -> dict:
    summary = registry.histogram("gateway.settle_seconds").summary()
    return {key: summary[key] for key in ("p50", "p95", "p99")}


def phase_throughput(seed: int) -> dict:
    """Headline: the full population, one request each, no rejections."""
    obs = RecordingInstrumentation()
    community, gateway, name = build_gateway_community(
        seed=seed, obs=obs, max_inflight=512, queue_capacity=4096,
        pipeline_options={"max_batch": 256})
    try:
        config = LoadSimConfig(clients=CLIENTS, requests_per_client=1,
                               arrival_window=ARRIVAL_WINDOW, seed=seed)
        start = time.perf_counter()
        stats = run_load_sim(community, gateway, name, config)
        wall = time.perf_counter() - start
        state = community.node("Org1").controllers[name] \
            .b2b_object.get_state()
        assert stats.settled_valid == CLIENTS, stats.summary()
        assert stats.gave_up == 0
        # Exactly-once: the additive merge counts every application.
        assert state["applied"] == stats.settled_valid, state
        latency = _gateway_percentiles(obs.registry)
        return {
            "phase": "throughput",
            "clients": CLIENTS,
            "settled_valid": stats.settled_valid,
            "elapsed_virtual_s": stats.elapsed,
            "updates_per_virtual_s": stats.throughput,
            "wall_s": wall,
            "updates_per_wall_s": stats.settled_valid / wall,
            "latency_s": latency,
        }
    finally:
        community.close()


def phase_hot_clients(seed: int) -> dict:
    """Rate limiter caps the hot clients; nobody else is starved."""
    clients = max(60, CLIENTS // 200)
    hot = 3
    hot_factor = 20
    community, gateway, name = build_gateway_community(
        seed=seed, rate=20.0, burst=2.0,
        max_inflight=256, pipeline_options={"max_batch": 128})
    try:
        config = LoadSimConfig(clients=clients, requests_per_client=2,
                               arrival_window=0.5, hot_clients=hot,
                               hot_factor=hot_factor, seed=seed)
        stats = run_load_sim(community, gateway, name, config)
        expected = (clients - hot) * 2 + hot * 2 * hot_factor
        rate_limited = stats.retries.get("RateLimitedError", 0)
        assert rate_limited > 0, "hot clients were never throttled"
        assert stats.settled_valid == expected, stats.summary()
        assert stats.gave_up == 0, "rate limiting starved a client"
        state = community.node("Org1").controllers[name] \
            .b2b_object.get_state()
        assert state["applied"] == expected, state
        return {
            "phase": "hot_clients",
            "clients": clients,
            "hot_clients": hot,
            "hot_factor": hot_factor,
            "settled_valid": stats.settled_valid,
            "rate_limited_attempts": rate_limited,
            "elapsed_virtual_s": stats.elapsed,
        }
    finally:
        community.close()


def phase_circuit_breaker(seed: int) -> dict:
    """A crash degrades settlement; the breaker opens, probes, closes."""
    clients = max(100, CLIENTS // 500)
    community, gateway, name = build_gateway_community(
        seed=seed, max_inflight=128, queue_capacity=512,
        breaker={"failure_threshold": 3, "window": 10,
                 "latency_threshold": 0.5, "reset_timeout": 2.0,
                 "probes": 2},
        pipeline_options={"max_batch": 128})
    try:
        FaultSchedule(community).crash("Org2", 0.5, 2.5).arm()
        config = LoadSimConfig(clients=clients, requests_per_client=4,
                               arrival_window=0.4, think_time=0.05,
                               max_retries=200, seed=seed)
        stats = run_load_sim(community, gateway, name, config)
        breaker = gateway.breaker(name)
        states = [(old, new) for _, old, new in breaker.transitions]
        assert (CLOSED, OPEN) in states, states
        assert (OPEN, HALF_OPEN) in states, states
        assert (HALF_OPEN, CLOSED) in states, states
        assert breaker.state == CLOSED
        circuit_open = stats.retries.get("CircuitOpenError", 0)
        assert circuit_open > 0, "breaker never failed a request fast"
        state = community.node("Org1").controllers[name] \
            .b2b_object.get_state()
        assert state["applied"] == stats.settled_valid, state
        return {
            "phase": "circuit_breaker",
            "clients": clients,
            "settled_valid": stats.settled_valid,
            "circuit_open_rejections": circuit_open,
            "gave_up": stats.gave_up,
            "breaker_transitions": states,
            "elapsed_virtual_s": stats.elapsed,
        }
    finally:
        community.close()


def phase_idempotent_retries(seed: int) -> dict:
    """Aggressive duplicate submission: zero double applications."""
    clients = max(50, CLIENTS // 1000)
    community, gateway, name = build_gateway_community(
        seed=seed, max_inflight=256, pipeline_options={"max_batch": 128})
    try:
        tickets = []
        for index in range(clients):
            session = gateway.session(f"dup{index}")
            key = f"op-{index}"
            update = {"client": session.client_id, "n": 1}
            ticket = session.submit(name, update, key=key)
            # Duplicate immediately (still pending) ...
            assert session.submit(name, update, key=key) is ticket
            tickets.append((session, ticket))
        community.settle()
        replays = 0
        for session, ticket in tickets:
            assert ticket.done and ticket.valid, ticket.diagnostics
            # ... and again after settlement (replayed outcome).
            replay = session.retry(ticket)
            assert replay.replayed and replay.run_id == ticket.run_id
            replays += 1
        state = community.node("Org1").controllers[name] \
            .b2b_object.get_state()
        assert state["applied"] == clients, state
        return {
            "phase": "idempotent_retries",
            "clients": clients,
            "duplicate_submissions": clients * 2,
            "replays": replays,
            "applied": state["applied"],
        }
    finally:
        community.close()


def test_c13_gateway_load(report):
    """Tentpole load run + qualitative gateway guarantees.

    Writes ``benchmarks/results/BENCH_gateway_load.json`` so CI can
    track gateway throughput across commits.
    """
    throughput = phase_throughput(seed=1)
    hot = phase_hot_clients(seed=2)
    breaker = phase_circuit_breaker(seed=3)
    idempotency = phase_idempotent_retries(seed=4)

    results = {
        "experiment": "C13",
        "workload": f"{CLIENTS} closed-loop clients through the gateway "
                    "(inmemory transport, 2 organisations)",
        "smoke": SMOKE,
        "phases": [throughput, hot, breaker, idempotency],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_gateway_load.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    latency = throughput["latency_s"]
    rows = [
        ["clients", throughput["clients"]],
        ["settled updates", throughput["settled_valid"]],
        ["updates/s (virtual time)",
         f"{throughput['updates_per_virtual_s']:.0f}"],
        ["updates/s (wall clock)",
         f"{throughput['updates_per_wall_s']:.0f}"],
        ["settle latency p50", f"{latency['p50'] * 1e3:.1f} ms"],
        ["settle latency p95", f"{latency['p95'] * 1e3:.1f} ms"],
        ["settle latency p99", f"{latency['p99'] * 1e3:.1f} ms"],
        ["hot clients rate-limited attempts",
         hot["rate_limited_attempts"]],
        ["breaker fast-fail rejections",
         breaker["circuit_open_rejections"]],
        ["breaker transitions",
         " -> ".join(new for _, new in breaker["breaker_transitions"])],
        ["duplicate submissions replayed", idempotency["replays"]],
        ["double applications", 0],
    ]
    body = format_table(["metric", "value"], rows) + (
        f"\n\nexactly-once held in every phase (additive counter merge)"
        f"\ncomparison JSON: {json_path}")
    report("C13", "closed-loop client load through the gateway", body)

    assert throughput["updates_per_virtual_s"] >= MIN_UPDATES_PER_VIRTUAL_S
    if not SMOKE:
        assert throughput["clients"] >= 100_000
