"""Experiment F1 — Figure 1: direct vs trusted-agent interaction styles.

Three organisations share interaction state.  In the *direct* style they
coordinate one shared object (Figure 1a); in the *indirect* style each
organisation coordinates a two-party object with its trusted agent and
the agents coordinate among themselves (Figure 1b).  We replay the same
business update in both deployments and compare the message and latency
cost of the mediation.

Expected shape: the indirect style costs several times more messages and
latency per business update (each update crosses the inner object, the
outer agents' object, and the other principals' inner objects), which is
the price of conditional disclosure.
"""

from __future__ import annotations

from repro.agents import TrustedAgent
from repro.bench.metrics import MessageCounter, format_table
from repro.core import Community, DictB2BObject, SimRuntime


def build_direct(seed=0):
    orgs = ["Org1", "Org2", "Org3"]
    community = Community(orgs, runtime=SimRuntime(seed=seed))
    objects = {n: DictB2BObject() for n in orgs}
    controllers = community.found_object("interaction", objects)
    return community, controllers, objects


def build_indirect(seed=0):
    orgs = ["Org1", "Org2", "Org3"]
    agents = ["TA1", "TA2", "TA3"]
    community = Community(orgs + agents, runtime=SimRuntime(seed=seed))
    inner_ctrls, inner_objs = {}, {}
    for org, agent in zip(orgs, agents):
        objects = {org: DictB2BObject(), agent: DictB2BObject()}
        ctrls = community.found_object(f"inner_{org}", objects)
        inner_ctrls[org] = ctrls[org]
        inner_objs[org] = objects[org]
    outer = {agent: DictB2BObject() for agent in agents}
    community.found_object("outer", outer)
    for org, agent in zip(orgs, agents):
        TrustedAgent(community.node(agent), f"inner_{org}", "outer")
    return community, inner_ctrls, inner_objs


def one_direct_update(community, controllers, objects, key, value):
    controller = controllers["Org1"]
    controller.enter()
    controller.overwrite()
    objects["Org1"].set_attribute(key, value)
    controller.leave()
    community.runtime.wait_until(
        lambda: all(obj.get_attribute(key) == value
                    for obj in objects.values()),
        timeout=10.0,
    )


def one_indirect_update(community, controllers, objects, key, value):
    controller = controllers["Org1"]
    controller.enter()
    controller.overwrite()
    objects["Org1"].set_attribute(key, value)
    controller.leave()
    # converged when every principal's inner replica has the value
    community.runtime.wait_until(
        lambda: all(obj.get_attribute(key) == value
                    for obj in objects.values()),
        timeout=30.0,
    )


def measure(build, update, label):
    community, controllers, objects = build()
    counter = MessageCounter()
    network = community.runtime.network
    start = network.now()
    counter.start(network)
    for i in range(5):
        update(community, controllers, objects, f"k{i}", i)
    delta = counter.delta(network)
    elapsed = network.now() - start
    return {
        "style": label,
        "messages_per_update": delta["delivered"] / 5,
        "virtual_seconds_per_update": elapsed / 5,
    }


def test_fig1_direct_vs_trusted_agents(benchmark, report):
    direct = measure(build_direct, one_direct_update, "direct (Fig 1a)")
    indirect = measure(build_indirect, one_indirect_update,
                       "via trusted agents (Fig 1b)")

    # Benchmark the direct style's per-update cost (wall clock).
    community, controllers, objects = build_direct(seed=99)
    counter = iter(range(1_000_000))

    def run():
        one_direct_update(community, controllers, objects,
                          "bench", next(counter))

    benchmark(run)

    rows = [[m["style"], m["messages_per_update"],
             m["virtual_seconds_per_update"]] for m in (direct, indirect)]
    factor = indirect["messages_per_update"] / direct["messages_per_update"]
    body = format_table(
        ["interaction style", "msgs/update", "virtual s/update"], rows
    ) + f"\n\nmediation message overhead factor: {factor:.2f}x"
    report("F1", "direct vs trusted-agent interaction styles", body)

    # Shape: mediation multiplies message cost, and both converge.
    assert factor > 2.0
    assert indirect["virtual_seconds_per_update"] \
        > direct["virtual_seconds_per_update"]
