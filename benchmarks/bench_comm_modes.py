"""Experiment C9 — communication modes (section 5).

The middleware supports synchronous, deferred-synchronous and
asynchronous coordination.  Workload: one organisation pushes one update
to each of K independent shared objects.

* synchronous — each `leave` blocks for the full protocol round trip;
* deferred-synchronous — all K proposals are launched back to back, then
  `coord_commit` collects them, overlapping the network rounds;
* asynchronous — same launch pattern, completion via `coordCallback`.

Expected shape: deferred and asynchronous pipelining finish the batch in
roughly one round-trip of virtual time instead of K.
"""

from __future__ import annotations

from repro.bench.metrics import format_table
from repro.core import (
    ASYNCHRONOUS,
    DEFERRED_SYNCHRONOUS,
    SYNCHRONOUS,
    Community,
    DictB2BObject,
    SimRuntime,
)
from repro.protocol.events import RunCompleted

K = 5


def build(mode, seed):
    community = Community(["Org1", "Org2"], runtime=SimRuntime(seed=seed))
    controllers = []
    objects = []
    for index in range(K):
        replicas = {n: DictB2BObject() for n in community.names()}
        ctrls = community.found_object(f"obj{index}", replicas, mode=mode)
        controllers.append(ctrls["Org1"])
        objects.append(replicas)
    return community, controllers, objects


def run_mode(mode, seed):
    community, controllers, objects = build(mode, seed)
    network = community.runtime.network
    start = network.now()
    tickets = []
    callbacks = []
    if mode == ASYNCHRONOUS:
        for replicas in objects:
            replicas["Org1"].coord_callback = callbacks.append
    for index, controller in enumerate(controllers):
        controller.enter()
        controller.overwrite()
        objects[index]["Org1"].set_attribute("v", index)
        tickets.append(controller.leave())
    if mode == DEFERRED_SYNCHRONOUS:
        for controller, ticket in zip(controllers, tickets):
            controller.coord_commit(ticket)
    elif mode == ASYNCHRONOUS:
        community.runtime.wait_until(
            lambda: sum(1 for e in callbacks
                        if isinstance(e, RunCompleted)) >= K,
            timeout=30.0,
        )
    elapsed = network.now() - start
    community.settle(2.0)
    for index, replicas in enumerate(objects):
        assert replicas["Org2"].get_attribute("v") == index
    return elapsed


def test_c9_communication_modes(benchmark, report):
    sync_time = run_mode(SYNCHRONOUS, seed=1)
    deferred_time = run_mode(DEFERRED_SYNCHRONOUS, seed=2)
    async_time = run_mode(ASYNCHRONOUS, seed=3)

    # Shape: pipelining beats serial blocking by roughly the batch size.
    assert deferred_time < sync_time / 2
    assert async_time < sync_time / 2

    def deferred_batch():
        run_mode(DEFERRED_SYNCHRONOUS, seed=4)

    benchmark.pedantic(deferred_batch, rounds=8, iterations=1)

    rows = [
        [SYNCHRONOUS, sync_time],
        [DEFERRED_SYNCHRONOUS, deferred_time],
        [ASYNCHRONOUS, async_time],
    ]
    body = format_table(
        ["mode", f"virtual time for {K}-object batch (s)"], rows
    ) + (
        f"\n\npipelining speed-up: {sync_time / deferred_time:.1f}x "
        "(deferred), "
        f"{sync_time / async_time:.1f}x (asynchronous)"
    )
    report("C9", "synchronous vs deferred vs asynchronous modes", body)
