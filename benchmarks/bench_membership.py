"""Experiment C6 — connection/disconnection/eviction cost (section 4.5).

Measures the message cost of each membership protocol as the group grows:
connect (request, proposal to n-1 members, responses, commit, welcome),
voluntary disconnect, and eviction.  Expected shape: all three are O(n)
in messages, connect costs slightly more (request + state-transfer
welcome), and every run leaves all members with identical group views.
"""

from __future__ import annotations

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime


def build(n, seed=0):
    names = [f"Org{i + 1}" for i in range(n)]
    community = Community(names, runtime=SimRuntime(seed=seed))
    objects = {name: DictB2BObject({"v": 1}) for name in names}
    controllers = community.found_object("shared", objects)
    return community, controllers


def measure_membership(n, seed):
    community, controllers = build(n, seed=seed)
    network = community.runtime.network

    # connect
    community.add_organisation("Joiner")
    sponsor = controllers["Org1"].members()[-1]
    before = network.stats.delivered
    joiner_controller = community.node("Joiner").connect(
        "shared", DictB2BObject({"v": 1}), sponsor
    )
    community.settle(2.0)
    connect_msgs = (network.stats.delivered - before) / 2  # minus acks

    views = {tuple(community.node(name).party.session("shared").group.members)
             for name in community.names()}
    assert len(views) == 1

    # voluntary disconnect (the joiner leaves again)
    before = network.stats.delivered
    joiner_controller.disconnect()
    community.settle(2.0)
    disconnect_msgs = (network.stats.delivered - before) / 2

    # eviction of the most recently joined original member
    before = network.stats.delivered
    controllers["Org1"].evict([f"Org{n}"])
    community.settle(2.0)
    evict_msgs = (network.stats.delivered - before) / 2
    survivors = [name for name in community.names()
                 if name not in ("Joiner", f"Org{n}")]
    views = {tuple(community.node(name).party.session("shared").group.members)
             for name in survivors}
    assert len(views) == 1

    return connect_msgs, disconnect_msgs, evict_msgs


def test_c6_membership_protocol_cost(benchmark, report):
    rows = []
    by_n = {}
    for n in (2, 3, 4, 6, 8, 12):
        connect_msgs, disconnect_msgs, evict_msgs = measure_membership(
            n, seed=n)
        rows.append([n, connect_msgs, disconnect_msgs, evict_msgs])
        by_n[n] = connect_msgs

    # Shape: linear growth — doubling n roughly doubles the message cost
    # (never quadruples it).
    assert by_n[12] > by_n[3]
    assert by_n[12] / by_n[3] < (12 / 3) ** 2 / 2

    seeds = iter(range(100, 1_000_000))

    def one_join():
        community, controllers = build(3, seed=next(seeds))
        community.add_organisation("Joiner")
        sponsor = controllers["Org1"].members()[-1]
        community.node("Joiner").connect("shared",
                                         DictB2BObject({"v": 1}), sponsor)
        community.settle(2.0)

    benchmark.pedantic(one_join, rounds=10, iterations=1)

    body = format_table(
        ["group size n", "connect msgs", "voluntary disconnect msgs",
         "evict msgs"],
        rows,
    ) + "\n\nall membership changes left consistent group views: yes"
    report("C6", "membership protocol cost vs group size", body)
