"""Experiment C5 — update vs overwrite of object state (section 4.3.1).

The modified propose/respond messages let a proposer ship an update (a
delta) instead of the whole new state; recipients verify H(update) and
that applying the agreed update yields the claimed new state hash.

We coordinate a small change to a large object both ways and compare the
bytes on the wire.  Expected shape: update-mode traffic is roughly flat
in the object size while overwrite grows linearly; both converge to the
identical state.
"""

from __future__ import annotations

from repro.bench.harness import build_community
from repro.bench.metrics import format_table
from repro.bench.workload import large_state
from repro.core import DictB2BObject


def coordinate(state_bytes, use_update, seed=0):
    community = build_community(2, seed=seed)
    base = large_state(state_bytes)
    objects = {n: DictB2BObject(base) for n in community.names()}
    controllers = community.found_object("big", objects)
    network = community.runtime.network
    controller = controllers["Org1"]
    before = network.stats.bytes_sent
    controller.enter()
    if use_update:
        controller.update()
    else:
        controller.overwrite()
    objects["Org1"].set_attribute("delta", 1)
    controller.leave()
    community.settle(2.0)
    assert objects["Org2"].get_attribute("delta") == 1
    assert objects["Org2"].attributes() == objects["Org1"].attributes()
    return network.stats.bytes_sent - before


def test_c5_update_vs_overwrite(benchmark, report):
    rows = []
    ratios = []
    for size in (1_000, 10_000, 50_000):
        overwrite_bytes = coordinate(size, use_update=False, seed=size)
        update_bytes = coordinate(size, use_update=True, seed=size + 1)
        ratio = overwrite_bytes / update_bytes
        ratios.append((size, ratio))
        rows.append([size, overwrite_bytes, update_bytes, ratio])

    # Shape: the advantage of update mode grows with object size.
    assert ratios[-1][1] > ratios[0][1]
    assert ratios[-1][1] > 3  # large object: update wins by a wide margin

    seeds = iter(range(100, 1_000_000))

    def one_update_run():
        coordinate(10_000, use_update=True, seed=next(seeds))

    benchmark.pedantic(one_update_run, rounds=10, iterations=1)

    body = format_table(
        ["object size (bytes)", "overwrite wire bytes",
         "update wire bytes", "overwrite/update"],
        rows,
    ) + "\n\nupdate mode advantage grows with state size: yes"
    report("C5", "update vs overwrite coordination", body)
