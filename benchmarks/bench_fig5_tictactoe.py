"""Experiment F5 — Figure 5: the Tic-Tac-Toe game with a cheat attempt.

Replays the exact sequence from the paper's screenshot: Cross claims the
middle-row centre square; Nought claims the top-left square; Cross claims
the middle-row right square; then Cross attempts to mark the bottom-row
centre square with a zero (pre-empting Nought's move).

Expected outcomes (asserted):
* the cheat is invalidated and never reflected at Nought's server;
* the agreed state of the game is not updated by the attempt;
* Nought holds non-repudiable evidence of the attempt to cheat.
"""

from __future__ import annotations

import pytest

from repro.apps.tictactoe import CROSS, EMPTY, NOUGHT, TicTacToeObject, TicTacToePlayer
from repro.bench.metrics import format_table
from repro.core import Community, SimRuntime
from repro.errors import ValidationFailed


def build(seed=0):
    community = Community(["Cross", "Nought"], runtime=SimRuntime(seed=seed))
    players = {"Cross": CROSS, "Nought": NOUGHT}
    objects = {n: TicTacToeObject(players) for n in community.names()}
    controllers = community.found_object("game", objects)
    cross = TicTacToePlayer(controllers["Cross"], CROSS)
    nought = TicTacToePlayer(controllers["Nought"], NOUGHT)
    return community, cross, nought, objects


def play_figure5(community, cross, nought):
    """Returns (cheat_rejected, diagnostics)."""
    cross.save_move(4)
    nought.save_move(0)
    cross.save_move(5)
    try:
        cross.save_move(7, mark=NOUGHT)
        return False, []
    except ValidationFailed as exc:
        return True, list(exc.diagnostics)


def test_fig5_game_with_cheat_attempt(benchmark, report):
    community, cross, nought, objects = build()
    rejected, diagnostics = play_figure5(community, cross, nought)
    community.settle(1.0)

    assert rejected
    assert objects["Nought"].board == objects["Cross"].board
    assert objects["Nought"].board[4] == CROSS
    assert objects["Nought"].board[0] == NOUGHT
    assert objects["Nought"].board[5] == CROSS
    assert objects["Nought"].board[7] == EMPTY  # cheat not reflected
    # Nought holds evidence of the rejected proposal.
    log = community.node("Nought").ctx.evidence
    vetoes = [entry for entry in log.entries("authenticated-decision")
              if not entry.payload["valid"]]
    assert vetoes
    log.verify_chain()

    # Benchmark the cost of one validated move.
    seeds = iter(range(1, 1_000_000))

    def one_move():
        _com, cr, _no, _objs = build(seed=next(seeds))
        cr.save_move(4)

    benchmark.pedantic(one_move, rounds=20, iterations=1)

    board = objects["Nought"].board
    grid = "\n".join(
        " ".join(cell or "." for cell in board[row * 3:(row + 1) * 3])
        for row in range(3)
    )
    body = (
        "move sequence: X@centre, O@top-left, X@mid-right, "
        "then Cross attempts O@bottom-centre\n\n"
        f"agreed board at both servers:\n{grid}\n\n"
        f"cheat rejected: {rejected}\n"
        f"diagnostics: {diagnostics}\n"
        "evidence of the attempt held by Nought: yes (log verifies)"
    )
    report("F5", "Tic-Tac-Toe with cheat attempt", body)
