"""Experiment F2 — Figure 2: logical shared object vs replica coordination.

Figure 2 shows the logical view (objects in a virtual space) realised as
regulated coordination of replicas held at each organisation.  We verify
the realisation: invocations at *any* organisation become unanimously
validated transitions, after which all replicas are bit-identical, and
the per-invocation cost does not depend on which replica is invoked.
"""

from __future__ import annotations

from repro.bench.harness import assert_replicas_converged
from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime


def build(seed=0):
    orgs = ["Org1", "Org2", "Org3"]
    community = Community(orgs, runtime=SimRuntime(seed=seed))
    objects = {n: DictB2BObject() for n in orgs}
    controllers = community.found_object("virtual-object", objects)
    return community, controllers, objects


def invoke_at(community, controllers, objects, org, key, value):
    """Returns the virtual time from invocation to full convergence."""
    network = community.runtime.network
    start = network.now()
    controller = controllers[org]
    controller.enter()
    controller.overwrite()
    objects[org].set_attribute(key, value)
    controller.leave()
    community.runtime.wait_until(
        lambda: all(replica.get_attribute(key) == value
                    for replica in objects.values()),
        timeout=10.0,
    )
    elapsed = network.now() - start
    community.settle(0.5)  # drain trailing acks so counters stay aligned
    return elapsed


def test_fig2_replica_coordination(benchmark, report):
    community, controllers, objects = build()
    network = community.runtime.network

    rows = []
    for index, org in enumerate(community.names()):
        before_msgs = network.stats.delivered
        elapsed = invoke_at(community, controllers, objects, org,
                            f"set_by_{org}", index)
        rows.append([org, network.stats.delivered - before_msgs, elapsed])
    state = assert_replicas_converged(controllers)
    assert state == {f"set_by_{org}": i
                     for i, org in enumerate(community.names())}

    # Per-invocation cost is symmetric across replicas.
    message_counts = {row[1] for row in rows}
    assert len(message_counts) == 1

    community2, controllers2, objects2 = build(seed=7)
    counter = iter(range(1_000_000))

    def run():
        invoke_at(community2, controllers2, objects2, "Org2",
                  "bench", next(counter))

    benchmark(run)

    body = format_table(
        ["invoked at", "messages", "virtual seconds"], rows
    ) + "\n\nall replicas identical after each invocation: yes"
    report("F2", "logical shared object realised by replica coordination", body)
