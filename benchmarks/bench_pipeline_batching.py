"""Experiment C12 — proposal pipeline with batched coordination rounds.

The paper's protocol costs 3(n-1) messages and 2(n-1)+1 signatures per
coordination run *regardless of how much state change the run carries*
(section 4.4).  The proposal pipeline exploits exactly that: updates
submitted while a run is in flight are coalesced into one batched
proposal (``update_batch`` mode), so a burst of k updates settles in a
handful of runs instead of k.

This bench drives the same burst of updates through one organisation
twice — serially (one coordination run per update) and through the
pipeline (batched runs) — over the in-memory simulator for 2..5 parties
and over pooled loopback TCP, and reports the speedup.  The comparison
JSON is written to ``benchmarks/results/BENCH_pipeline_batching.json``
so CI can track the batching win across commits.

Expected shape: the pipelined burst needs far fewer runs (and therefore
signatures and messages), so it completes several times faster; the gap
widens with party count because every avoided run saves 3(n-1)
messages.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime, ThreadedRuntime
from repro.obs.recording import RecordingInstrumentation

#: ``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI can run this bench
#: on every push and still produce the comparison JSON artifact.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

UPDATES = 12 if SMOKE else 40
INMEMORY_SIZES = (2, 3) if SMOKE else (2, 3, 4, 5)
TCP_SIZES = (2,) if SMOKE else (2, 3)
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Floor asserted for the headline configuration (3 parties, inmemory):
#: a burst of updates must settle at least this many times faster
#: pipelined+batched than one-coordination-run-per-update.
MIN_SPEEDUP_3P = 3.0


def _build(transport: str, n_parties: int, seed: int, obs=None):
    names = [f"Org{i + 1}" for i in range(n_parties)]
    if transport == "inmemory":
        runtime = SimRuntime(seed=seed)
    else:
        runtime = ThreadedRuntime()
    community = Community(names, runtime=runtime, retransmit_interval=0.2,
                          obs=obs)
    objects = {name: DictB2BObject() for name in names}
    community.found_object("ledger", objects)
    return community, names, objects


def _check_converged(community, names, objects) -> None:
    reference = objects[names[0]].get_state()
    assert reference.get("k") == UPDATES - 1, reference
    for name in names[1:]:
        assert objects[name].get_state() == reference, name
    for name in names:
        assert not community.node(name).misbehaviour_reports, name


def run_serial(transport: str, n_parties: int, seed: int) -> dict:
    """One coordination run per update, each awaited before the next."""
    community, names, objects = _build(transport, n_parties, seed)
    try:
        node = community.node(names[0])
        start = time.perf_counter()
        for i in range(UPDATES):
            ticket = node.propagate_update("ledger", {"k": i})
            node.wait_for_ticket(ticket, timeout=120.0)
            assert ticket.valid, ticket.diagnostics
        elapsed = time.perf_counter() - start
        community.settle(0.2 if transport == "tcp" else None)
        _check_converged(community, names, objects)
        return {"mode": "serial", "seconds": elapsed, "runs": UPDATES}
    finally:
        community.close()


def run_pipelined(transport: str, n_parties: int, seed: int) -> dict:
    """All updates submitted up front; the pipeline batches them."""
    obs = RecordingInstrumentation()
    community, names, objects = _build(transport, n_parties, seed, obs=obs)
    try:
        node = community.node(names[0])
        start = time.perf_counter()
        tickets = [node.submit_update("ledger", {"k": i})
                   for i in range(UPDATES)]
        for ticket in tickets:
            node.wait_for_pipeline(ticket, timeout=120.0)
            assert ticket.valid, ticket.diagnostics
        elapsed = time.perf_counter() - start
        community.settle(0.2 if transport == "tcp" else None)
        _check_converged(community, names, objects)
        registry = obs.registry
        runs = registry.counter_value("protocol.runs.started.proposer")
        batch = registry.histogram("pipeline.batch_size").summary()
        return {
            "mode": "pipelined",
            "seconds": elapsed,
            "runs": runs,
            "batched_proposals": registry.counter_value("pipeline.batches"),
            "updates_batched":
                registry.counter_value("pipeline.batched_updates"),
            "max_batch_size": batch["max"],
            "busy_retries": registry.counter_value("pipeline.busy_retries"),
        }
    finally:
        community.close()


def test_c12_pipeline_batching(report):
    """Tentpole comparison: batched pipeline vs run-per-update.

    Writes ``benchmarks/results/BENCH_pipeline_batching.json`` so CI can
    track the batching speedup across commits.
    """
    seeds = iter(range(1, 100))
    configs = [("inmemory", n) for n in INMEMORY_SIZES]
    configs += [("tcp", n) for n in TCP_SIZES]

    rows = []
    results = []
    for transport, n_parties in configs:
        serial = run_serial(transport, n_parties, next(seeds))
        pipelined = run_pipelined(transport, n_parties, next(seeds))
        speedup = serial["seconds"] / pipelined["seconds"]
        results.append({
            "transport": transport,
            "parties": n_parties,
            "serial": serial,
            "pipelined": pipelined,
            "speedup": speedup,
        })
        rows.append([
            transport, n_parties,
            serial["seconds"] * 1e3, serial["runs"],
            pipelined["seconds"] * 1e3, pipelined["runs"],
            pipelined["max_batch_size"], f"{speedup:.2f}x",
        ])

    comparison = {
        "experiment": "C12",
        "workload": f"{UPDATES} updates from one proposer, "
                    "serial vs batched pipeline",
        "smoke": SMOKE,
        "results": results,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_pipeline_batching.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(comparison, handle, indent=2, sort_keys=True)

    body = format_table(
        ["transport", "parties", "serial ms", "serial runs",
         "pipelined ms", "pipelined runs", "max batch", "speedup"],
        rows,
    ) + (f"\n\nsame agreed state and clean evidence in every "
         f"configuration\ncomparison JSON: {json_path}")
    report("C12", "batched proposal pipeline vs run-per-update", body)

    headline = [r for r in results
                if r["transport"] == "inmemory" and r["parties"] == 3]
    for result in headline:
        assert result["speedup"] >= MIN_SPEEDUP_3P, (
            f"3-party inmemory batching only {result['speedup']:.2f}x"
        )
