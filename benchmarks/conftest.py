"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md (a figure from
the paper or a prose claim).  Beyond pytest-benchmark's timing table,
each experiment writes its qualitative table — the rows the paper
reports — to ``benchmarks/results/<experiment>.txt`` and to stdout.
"""

from __future__ import annotations

import os

import pytest

import repro.core.community as community_module
from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.rsa import generate_keypair
from repro.crypto.signature import KeyPair

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_KEY_CACHE: "dict[tuple[str, int], KeyPair]" = {}
_CACHE_RNG = DeterministicRandomSource("bench-key-cache")


def _cached_generate_party_keypair(party_id, bits=512, rng=None):
    key = (party_id, bits)
    if key not in _KEY_CACHE:
        _KEY_CACHE[key] = KeyPair(
            party_id=party_id,
            private_key=generate_keypair(bits, _CACHE_RNG),
        )
    return _KEY_CACHE[key]


@pytest.fixture(autouse=True)
def _fast_keys(monkeypatch):
    monkeypatch.setattr(
        community_module, "generate_party_keypair", _cached_generate_party_keypair
    )


@pytest.fixture
def report():
    """Write an experiment report block to the results directory."""

    def write(experiment_id: str, title: str, body: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = f"== {experiment_id}: {title} ==\n{body.rstrip()}\n"
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("\n" + text)

    return write
