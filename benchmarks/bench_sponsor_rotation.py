"""Experiment C10 — sponsor rotation ablation (section 4.5.1, footnote 2).

"Rotating the responsibility of sponsor reduces reliance on a single
member"; the footnote describes the alternative where the initial member
sponsors every request.  We run the same admission sequence under both
modes and compare how sponsorship work (proposals coordinated, welcome
messages sent) distributes over the members.

Expected shape: with rotation every newly joined member sponsors exactly
the next admission (work spread evenly, max-share → 1/k); with a fixed
sponsor the founding member does all of it (max-share = 100%).
"""

from __future__ import annotations

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime
from repro.protocol.group import FIXED, ROTATING

JOINS = 5


def run_admissions(sponsor_mode, seed):
    community = Community(["Org1", "Org2"], runtime=SimRuntime(seed=seed))
    objects = {n: DictB2BObject({"v": 1}) for n in ["Org1", "Org2"]}
    controllers = community.found_object("shared", objects,
                                         sponsor_mode=sponsor_mode)
    sponsorships: "dict[str, int]" = {}
    for index in range(JOINS):
        name = f"Joiner{index + 1}"
        community.add_organisation(name)
        group = community.node("Org1").party.session("shared").group
        sponsor = group.connect_sponsor()
        sponsorships[sponsor] = sponsorships.get(sponsor, 0) + 1
        community.node(name).connect(
            "shared", DictB2BObject({"v": 1}), sponsor,
            sponsor_mode=sponsor_mode,
        )
        community.settle(2.0)
    members = community.node("Org1").party.session("shared").group.members
    assert len(members) == 2 + JOINS
    max_share = max(sponsorships.values()) / JOINS
    return sponsorships, max_share


def test_c10_sponsor_rotation_ablation(benchmark, report):
    rotating, rotating_share = run_admissions(ROTATING, seed=1)
    fixed, fixed_share = run_admissions(FIXED, seed=2)

    # Shape: rotation spreads sponsorship (each member sponsors at most
    # once in this sequence); the fixed mode concentrates it all on the
    # founding member.
    assert max(rotating.values()) == 1
    assert fixed == {"Org1": JOINS}
    assert rotating_share < fixed_share == 1.0

    seeds = iter(range(100, 1_000_000))

    def one_rotating_admission():
        community = Community(["Org1", "Org2"],
                              runtime=SimRuntime(seed=next(seeds)))
        objects = {n: DictB2BObject({"v": 1}) for n in ["Org1", "Org2"]}
        community.found_object("shared", objects)
        community.add_organisation("Joiner")
        community.node("Joiner").connect("shared", DictB2BObject({"v": 1}),
                                         "Org2")
        community.settle(2.0)

    benchmark.pedantic(one_rotating_admission, rounds=10, iterations=1)

    rows = []
    everyone = sorted(set(rotating) | set(fixed))
    for member in everyone:
        rows.append([member, rotating.get(member, 0), fixed.get(member, 0)])
    body = format_table(
        ["member", "sponsorships (rotating)", "sponsorships (fixed)"], rows
    ) + (
        f"\n\nmax share of sponsorship work over {JOINS} admissions: "
        f"rotating {rotating_share:.0%} vs fixed {fixed_share:.0%}"
    )
    report("C10", "sponsor rotation vs fixed sponsor", body)
