"""Experiment C14 — cost of the live telemetry plane.

Observability is only free if nobody pays for it on the hot path.  This
bench drives the C12 pipelined-burst workload (one proposer, batched
coordination runs, 3 parties over the in-memory simulator) three times:

* ``off`` — the no-op :class:`Instrumentation` (hooks compiled to
  ``pass``), the floor every production deployment can fall back to;
* ``recording`` — :class:`RecordingInstrumentation` feeding the
  :class:`MetricsRegistry`;
* ``live`` — the full telemetry plane: recording *plus* the flight
  recorder ring, the health watchdog evaluating its SLO rules on
  virtual time, and a real :class:`TelemetryServer` being scraped
  over HTTP by a background thread for the whole run.

Each update carries a small business document (an invoice-shaped dict,
~0.5 KB canonical) rather than a single integer: the paper's workload
is inter-organisational information sharing, and a degenerate payload
would measure instrumentation against a community that signs and
journals almost nothing.

Methodology: each round runs the modes in palindrome order —
``off, recording, live, live, recording, off`` — and the overhead is
the median of the per-round *CPU-time* ratios (``time.process_time``)
of the per-mode sums.  The palindrome cancels linear machine drift
(CPU-frequency scaling, noisy neighbours) to first order inside each
round, which plain back-to-back pairing does not; CPU time additionally
charges the scraper and exporter threads' work to the live mode — which
is exactly the cost being measured.  Wall-clock medians are reported
alongside for scale.

The gated figure is the ratio of the per-mode *minima* across rounds —
each mode's cleanest measurement — following the same reasoning as
``timeit``'s documented advice to take the min of repeated timings:
on a shared machine, noise only ever adds time, so the minimum is the
best estimate of what the code itself costs.  The median of per-round
ratios is reported next to it as the typical-case figure.

The comparison JSON is written to
``benchmarks/results/BENCH_obs_overhead.json`` and CI fails the build
if the live overhead exceeds :data:`MAX_OVERHEAD`.
"""

from __future__ import annotations

import gc
import json
import os
import socket
import threading
import time

from repro.bench.metrics import format_table
from repro.core import Community, DictB2BObject, SimRuntime
from repro.obs.live import (
    FlightRecorder,
    HealthMonitor,
    TelemetryServer,
    default_rules,
)
from repro.obs.recording import RecordingInstrumentation

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

PARTIES = 3
UPDATES = 48 if SMOKE else 64
ROUNDS = 7 if SMOKE else 9
#: Real scrape intervals are seconds (Prometheus defaults to 15s); this
#: polls ~150x faster than that and still far from a tight loop that
#: would just measure GIL contention (which matters doubly on the
#: single-core CI runners, where the scraper and the burst share one
#: CPU).
SCRAPE_INTERVAL = 0.1
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: CI budget: the full live plane (recording + flight ring + watchdog +
#: scraped exporter) may cost at most this fraction over hooks-off.
MAX_OVERHEAD = 0.10

#: One replicated update: a small invoice-like document, the unit of
#: inter-organisational sharing the paper is about (~0.5 KB canonical).
DOCUMENT = {
    "doc_type": "invoice",
    "currency": "GBP",
    "status": "submitted",
    "lines": [
        {
            "sku": f"SKU-{item}",
            "qty": 3,
            "unit_price": 1999,
            "description": "replicated inter-organisational order line",
        }
        for item in range(3)
    ],
}


def _run_burst(seed: int, obs=None, live: bool = False) -> "tuple[float, float]":
    """One pipelined burst; returns (wall, cpu) seconds for the burst.

    With ``live=True`` the obs must be recording: the flight ring is
    attached, a watchdog evaluates the default rules every virtual
    second, and a scraper thread polls the HTTP exporter throughout.
    """
    names = [f"Org{i + 1}" for i in range(PARTIES)]
    community = Community(names, runtime=SimRuntime(seed=seed),
                          retransmit_interval=0.2, obs=obs)
    objects = {name: DictB2BObject() for name in names}
    community.found_object("ledger", objects)
    node = community.node(names[0])

    timer = server = None
    stop_scraper = threading.Event()
    scraper = None
    scrapes = [0]
    if live:
        obs.flight = FlightRecorder(capacity=2048,
                                    clock=community.clock)
        monitor = HealthMonitor(obs.registry, rules=default_rules(),
                                obs=obs, party=names[0],
                                clock=community.clock.now,
                                flight=obs.flight)
        timer = monitor.schedule_on(community.runtime.network, 1.0)
        server = TelemetryServer(obs.registry, monitor=monitor,
                                 flight=obs.flight).start()

        def scrape() -> None:
            # Minimal keep-alive client: in production the scraper is the
            # monitoring system on another machine, so its CPU is not part
            # of the node's overhead — keep the in-process client's share
            # of the measurement as small as honesty allows while the
            # server still renders and serves every poll for real.
            request = b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n"
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=5)
            reader = sock.makefile("rb")
            try:
                while not stop_scraper.is_set():
                    sock.sendall(request)
                    length = 0
                    while True:
                        line = reader.readline()
                        if not line or line == b"\r\n":
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":", 1)[1])
                    assert reader.read(length), "empty scrape body"
                    scrapes[0] += 1
                    stop_scraper.wait(SCRAPE_INTERVAL)
            finally:
                reader.close()
                sock.close()

        scraper = threading.Thread(target=scrape, daemon=True)
        scraper.start()

    try:
        # Align the collector's state across modes: without this, the
        # allocation threshold crossed *during* a burst depends on what
        # the previous mode left behind, and cyclic-GC pauses land on
        # one mode's clock instead of being paid equally by all three.
        gc.collect()
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        tickets = [
            node.submit_update("ledger", {f"doc-{i}": dict(DOCUMENT, seq=i)})
            for i in range(UPDATES)
        ]
        for ticket in tickets:
            node.wait_for_pipeline(ticket, timeout=120.0)
            assert ticket.valid, ticket.diagnostics
        wall = time.perf_counter() - wall_start
        cpu = time.process_time() - cpu_start
        if timer is not None:
            timer.cancel()
        community.settle(None)
        reference = objects[names[0]].get_state()
        for name in names[1:]:
            assert objects[name].get_state() == reference, name
        if live:
            assert obs.flight.recorded > 0, "flight ring never fed"
            assert scrapes[0] > 0, "exporter never scraped"
        return wall, cpu
    finally:
        stop_scraper.set()
        if scraper is not None:
            scraper.join()
        if server is not None:
            server.stop()
        community.close()


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def test_c14_obs_overhead(report):
    """Live telemetry plane must cost < 10% over hooks-off.

    Writes ``benchmarks/results/BENCH_obs_overhead.json`` so CI can
    gate on the overhead across commits.
    """
    # Warm-up: first runs pay import and key-cache costs for everyone.
    _run_burst(seed=98)
    _run_burst(seed=99, obs=RecordingInstrumentation(), live=True)

    rounds = []
    for index in range(ROUNDS):
        seed = 100 + index
        totals = {"off": [0.0, 0.0], "recording": [0.0, 0.0],
                  "live": [0.0, 0.0]}
        palindrome = ["off", "recording", "live", "live", "recording", "off"]
        for mode in palindrome:
            if mode == "off":
                wall, cpu = _run_burst(seed)
            else:
                wall, cpu = _run_burst(seed, obs=RecordingInstrumentation(),
                                       live=(mode == "live"))
            totals[mode][0] += wall
            totals[mode][1] += cpu
        round_entry = {
            "overhead_recording":
                totals["recording"][1] / totals["off"][1] - 1.0,
            "overhead_live": totals["live"][1] / totals["off"][1] - 1.0,
        }
        for mode, (wall, cpu) in totals.items():
            round_entry[f"{mode}_wall"] = wall / 2.0
            round_entry[f"{mode}_cpu"] = cpu / 2.0
        rounds.append(round_entry)

    best = {mode: min(r[f"{mode}_cpu"] for r in rounds)
            for mode in ("off", "recording", "live")}
    overhead_recording = best["recording"] / best["off"] - 1.0
    overhead_live = best["live"] / best["off"] - 1.0
    overhead_recording_median = _median(
        [r["overhead_recording"] for r in rounds])
    overhead_live_median = _median([r["overhead_live"] for r in rounds])
    medians = {
        mode: {
            "wall": _median([r[f"{mode}_wall"] for r in rounds]),
            "cpu": _median([r[f"{mode}_cpu"] for r in rounds]),
        }
        for mode in ("off", "recording", "live")
    }

    comparison = {
        "experiment": "C14",
        "workload": f"{UPDATES}-update pipelined burst of ~0.5KB documents, "
                    f"{PARTIES} parties, in-memory simulator",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "scrape_interval_s": SCRAPE_INTERVAL,
        "median_seconds": medians,
        "overhead": {
            "recording": overhead_recording,
            "live": overhead_live,
        },
        "overhead_median": {
            "recording": overhead_recording_median,
            "live": overhead_live_median,
        },
        "budget": MAX_OVERHEAD,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_obs_overhead.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(comparison, handle, indent=2, sort_keys=True)

    rows = [
        ["off (no-op hooks)", medians["off"]["wall"] * 1e3,
         medians["off"]["cpu"] * 1e3, "—", "—"],
        ["recording", medians["recording"]["wall"] * 1e3,
         medians["recording"]["cpu"] * 1e3,
         f"{overhead_recording:+.1%}",
         f"{overhead_recording_median:+.1%}"],
        ["live (+flight+watchdog+scraped exporter)",
         medians["live"]["wall"] * 1e3, medians["live"]["cpu"] * 1e3,
         f"{overhead_live:+.1%}", f"{overhead_live_median:+.1%}"],
    ]
    body = format_table(
        ["instrumentation", "median wall ms", "median cpu ms",
         f"cpu overhead (per-mode best of {ROUNDS} palindrome rounds)",
         "(median)"], rows,
    ) + (f"\n\nbudget: live overhead < {MAX_OVERHEAD:.0%}"
         f"\ncomparison JSON: {json_path}")
    report("C14", "live telemetry plane overhead", body)

    assert overhead_live < MAX_OVERHEAD, (
        f"live telemetry plane costs {overhead_live:+.1%} over hooks-off "
        f"(budget {MAX_OVERHEAD:.0%})"
    )
