"""Experiment C4 — non-repudiation overhead vs plain 2PC (section 4.3).

The paper frames the protocol as "non-repudiable two-phase commit".  We
isolate what the non-repudiation machinery costs by running the same
replication workload through (a) the full B2BObjects protocol (RSA
signatures, TSA time-stamps, hash-chained evidence logs, journalling) and
(b) the stripped baseline :class:`PlainTwoPhaseEngine` (same three message
steps and unanimity rule, no crypto, no evidence).

Expected shape: identical message counts (both are 3(n-1)); wall-clock
cost dominated by the signature work — B2BObjects is one to two orders of
magnitude slower per run, which is the price of attributable evidence.
"""

from __future__ import annotations

import time

from repro.bench.harness import build_community, found_dict_object
from repro.bench.metrics import format_table
from repro.protocol.baseline import PlainTwoPhaseEngine

PARTIES = 3
RUNS = 30


def run_b2b(runs=RUNS, seed=1):
    community = build_community(PARTIES, seed=seed)
    controllers, objects = found_dict_object(community)
    network = community.runtime.network
    controller = controllers["Org1"]
    before_msgs = network.stats.delivered
    start = time.perf_counter()
    for i in range(runs):
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", i)
        controller.leave()
        community.settle(2.0)
    elapsed = time.perf_counter() - start
    protocol_msgs = (network.stats.delivered - before_msgs) / 2  # minus acks
    return elapsed / runs, protocol_msgs / runs


def run_plain(runs=RUNS):
    names = [f"Org{i + 1}" for i in range(PARTIES)]
    engines = {name: PlainTwoPhaseEngine(name, "shared", names, {})
               for name in names}
    message_count = 0

    def pump(source, output):
        nonlocal message_count
        queue = [(source, output)]
        while queue:
            sender, out = queue.pop(0)
            for recipient, message in out.messages:
                message_count += 1
                queue.append(
                    (recipient, engines[recipient].handle(sender, message))
                )

    start = time.perf_counter()
    for i in range(runs):
        _run_id, output = engines["Org1"].propose({"k": i})
        pump("Org1", output)
    elapsed = time.perf_counter() - start
    for engine in engines.values():
        assert engine.state == {"k": runs - 1}
    return elapsed / runs, message_count / runs


def test_c4_nonrepudiation_overhead(benchmark, report):
    b2b_time, b2b_msgs = run_b2b()
    plain_time, plain_msgs = run_plain()

    assert b2b_msgs == plain_msgs == 3 * (PARTIES - 1)
    factor = b2b_time / plain_time
    assert factor > 5  # evidence machinery dominates

    community = build_community(PARTIES, seed=5)
    controllers, objects = found_dict_object(community)
    controller = controllers["Org1"]
    counter = iter(range(1_000_000))

    def one_b2b_run():
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", next(counter))
        controller.leave()
        community.settle(2.0)

    benchmark(one_b2b_run)

    rows = [
        ["B2BObjects (signed, stamped, logged)", b2b_time * 1e3, b2b_msgs],
        ["plain 2PC baseline", plain_time * 1e3, plain_msgs],
    ]
    body = format_table(
        ["protocol", "wall ms/run", "protocol msgs/run"], rows
    ) + (
        f"\n\nnon-repudiation overhead factor: {factor:.1f}x "
        "(same message complexity, all extra cost is crypto + evidence)"
    )
    report("C4", "non-repudiation overhead vs plain 2PC", body)
