"""Experiment C8 — cost of the cryptographic substrate (section 4.2).

Every protocol message costs one signature at the sender, one
verification per receiver, and a TSA time-stamp; state identifiers cost
hashes.  This bench characterises those primitives across RSA key sizes
so the protocol-level numbers elsewhere can be decomposed.

Expected shape: signing grows roughly cubically with modulus size,
verification stays cheap (small public exponent), hashing is negligible.
"""

from __future__ import annotations

import time

from repro.bench.metrics import format_table
from repro.crypto import (
    DeterministicRandomSource,
    TimestampService,
    generate_party_keypair,
    hash_value,
)

RNG = DeterministicRandomSource("bench-crypto")
PAYLOAD = {"object": "order", "seq": 42, "state": {"widget1": 2, "note": "x" * 64}}


def _time_it(fn, count):
    start = time.perf_counter()
    for _ in range(count):
        fn()
    return (time.perf_counter() - start) / count


def measure_key_size(bits):
    keypair = generate_party_keypair(f"bench{bits}", bits=bits, rng=RNG)
    signer, verifier = keypair.signer(), keypair.verifier()
    signature = signer.sign(PAYLOAD)
    keygen_time = _time_it(
        lambda: generate_party_keypair(f"k{bits}", bits=bits, rng=RNG), 3
    )
    sign_time = _time_it(lambda: signer.sign(PAYLOAD), 30)
    verify_time = _time_it(lambda: verifier.verify(PAYLOAD, signature), 30)
    return keygen_time, sign_time, verify_time


def test_c8_crypto_primitives(benchmark, report):
    rows = []
    sign_times = {}
    # 512 bits is the smallest modulus that fits a SHA-256 PKCS#1
    # signature payload (62 bytes + padding).
    for bits in (512, 768, 1024):
        keygen_time, sign_time, verify_time = measure_key_size(bits)
        sign_times[bits] = sign_time
        rows.append([bits, keygen_time * 1e3, sign_time * 1e6,
                     verify_time * 1e6])

    hash_time = _time_it(lambda: hash_value(PAYLOAD), 2000)
    tsa = TimestampService(keypair=generate_party_keypair("TSA", bits=512,
                                                          rng=RNG))
    stamp_time = _time_it(lambda: tsa.stamp(PAYLOAD), 30)

    # Shape: signing cost grows superlinearly with key size; hashing is
    # orders of magnitude cheaper than signing.
    assert sign_times[1024] > sign_times[512] * 2
    assert hash_time < sign_times[512] / 20

    keypair = generate_party_keypair("bench-loop", bits=512, rng=RNG)
    signer = keypair.signer()
    benchmark(lambda: signer.sign(PAYLOAD))

    body = format_table(
        ["RSA bits", "keygen (ms)", "sign (us)", "verify (us)"], rows
    ) + (
        f"\n\nSHA-256 structured hash: {hash_time * 1e6:.1f} us\n"
        f"TSA time-stamp token (512-bit): {stamp_time * 1e6:.1f} us\n"
        "per protocol message: 1 sign + 1 stamp at the sender, "
        "1-2 verifies per receiver"
    )
    report("C8", "cryptographic substrate cost", body)
