"""Experiment C1 — message efficiency claim (section 7).

"[The protocol] is also efficient in terms of the number of messages
required (3(n-1) for n parties)": m1 to each of the n-1 recipients, one
m2 from each, and m3 to each.

We count raw protocol messages per run for n = 2..16 on a loss-free
network and check the measured count equals the formula exactly.  The
reliable layer's acknowledgements (one per protocol message) are reported
separately — they are transport cost, not protocol cost.
"""

from __future__ import annotations

from repro.bench.harness import (
    build_community,
    found_dict_object,
    protocol_message_count,
)
from repro.bench.metrics import MessageCounter, format_table


def messages_per_run(n_parties, runs=3, seed=0):
    community = build_community(n_parties, seed=seed)
    controllers, objects = found_dict_object(community)
    network = community.runtime.network
    counter = MessageCounter()
    counter.start(network)
    controller = controllers["Org1"]
    for i in range(runs):
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", i)
        controller.leave()
        community.settle(2.0)
    delta = counter.delta(network)
    # delivered counts protocol messages + their acks (1 ack each).
    delivered_per_run = delta["delivered"] / runs
    return delivered_per_run / 2, delivered_per_run / 2


def test_c1_message_complexity(benchmark, report):
    rows = []
    for n in (2, 3, 4, 6, 8, 12, 16):
        protocol_msgs, acks = messages_per_run(n)
        expected = protocol_message_count(n)
        rows.append([n, expected, protocol_msgs, acks])
        assert protocol_msgs == expected, (n, protocol_msgs)

    # Benchmark a 4-party coordination run end to end.
    community = build_community(4, seed=9)
    controllers, objects = found_dict_object(community)
    controller = controllers["Org1"]
    counter = iter(range(1_000_000))

    def one_run():
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", next(counter))
        controller.leave()
        community.settle(2.0)

    benchmark(one_run)

    body = format_table(
        ["parties n", "3(n-1) formula", "measured protocol msgs/run",
         "reliable-layer acks/run"],
        rows,
    ) + "\n\nmeasured == formula for every n: yes (O(n) per run)"
    report("C1", "message complexity 3(n-1)", body)
