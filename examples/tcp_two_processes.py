#!/usr/bin/env python3
"""Real sockets: the same middleware over TCP instead of the simulator.

The original prototype used Java RMI between organisations; this demo
runs two organisations over loopback TCP (stdlib sockets, JSON-lines
framing) using the threaded runtime.  The protocol stack — signatures,
time-stamps, evidence logs, the coordination protocol — is identical.

Run:  python examples/tcp_two_processes.py
"""

from repro import Community, DictB2BObject, ThreadedRuntime
from repro.errors import ValidationFailed
from repro.protocol import Decision


class PricedOrder(DictB2BObject):
    """An order where every item must carry a positive price."""

    def validate_state(self, proposed, current, proposer):
        for name, price in proposed.items():
            if not isinstance(price, int) or price <= 0:
                return Decision.reject(f"{name}: price must be positive")
        return Decision.accept()


def main() -> None:
    runtime = ThreadedRuntime()  # TcpNetwork on 127.0.0.1, real threads
    try:
        community = Community(["Buyer", "Seller"], runtime=runtime,
                              retransmit_interval=0.2)
        replicas = {"Buyer": PricedOrder(), "Seller": PricedOrder()}
        controllers = community.found_object("pricelist", replicas)
        buyer, seller = community.node("Buyer"), community.node("Seller")
        print("Buyer listening on ",
              runtime.network.address_of("Buyer"))
        print("Seller listening on",
              runtime.network.address_of("Seller"))

        controller = controllers["Seller"]
        controller.enter()
        controller.overwrite()
        replicas["Seller"].set_attribute("widget", 25)
        controller.leave()
        runtime.settle(0.2)
        print("Buyer's replica over TCP:", replicas["Buyer"].attributes())

        controller.enter()
        controller.overwrite()
        replicas["Seller"].set_attribute("gadget", -1)
        try:
            controller.leave()
        except ValidationFailed as exc:
            print("Buyer vetoed over TCP:", exc.diagnostics[0])
        runtime.settle(0.2)
        assert replicas["Buyer"].get_attribute("gadget") is None
        print("evidence entries at Buyer:",
              len(buyer.ctx.evidence), "| at Seller:",
              len(seller.ctx.evidence))
    finally:
        runtime.close()


if __name__ == "__main__":
    main()
