#!/usr/bin/env python3
"""Transactional multi-object updates via a composite object.

Section 4 notes the protocol "applies just as well to the use of a
composite object to coordinate the states of multiple objects", and
section 5's scoping hooks support transactional access.  This demo
updates an order *and* its invoice as one atomic unit of agreement:
either both changes are validated and installed everywhere, or neither
is.

Run:  python examples/composite_transaction_demo.py
"""

from repro import Community, CompositeB2BObject, DictB2BObject
from repro.errors import ValidationFailed
from repro.protocol import Decision


class Invoice(DictB2BObject):
    """An invoice that must always equal quantity x unit price."""

    def __init__(self, order: DictB2BObject,
                 initial: "dict | None" = None) -> None:
        super().__init__(initial)
        self._order = order

    def validate_state(self, proposed, current, proposer):
        # Cross-object rule: the invoice amount must be consistent with
        # the order it bills.  Because both travel in one composite
        # proposal, the rule sees the (proposed) pair atomically.
        quantity = self._pending_quantity
        amount = proposed.get("amount")
        if quantity is not None and amount != quantity * 10:
            return Decision.reject(
                f"invoice amount {amount} != quantity {quantity} x unit price 10"
            )
        return Decision.accept()

    _pending_quantity = None


class Bundle(CompositeB2BObject):
    """Order + invoice under one coordinated state."""

    def validate_state(self, proposed, current, proposer):
        # Let the invoice child see the proposed order quantity.
        invoice = self.children["invoice"]
        invoice._pending_quantity = proposed["order"].get("quantity")
        try:
            return super().validate_state(proposed, current, proposer)
        finally:
            invoice._pending_quantity = None


def build(name):
    order = DictB2BObject({"quantity": 0})
    invoice = Invoice(order, {"amount": 0})
    return Bundle({"order": order, "invoice": invoice}), order, invoice


def main() -> None:
    community = Community(["Buyer", "Seller"])
    bundles, orders, invoices = {}, {}, {}
    for name in community.names():
        bundles[name], orders[name], invoices[name] = build(name)
    controllers = community.found_object("order-bundle", bundles)

    controller = controllers["Buyer"]
    print("atomic update: quantity 3 + invoice 30")
    controller.enter()
    controller.overwrite()
    orders["Buyer"].set_attribute("quantity", 3)
    invoices["Buyer"].set_attribute("amount", 30)
    controller.leave()
    community.settle()
    print("  Seller sees: order", orders["Seller"].attributes(),
          "invoice", invoices["Seller"].attributes())

    print("\ninconsistent update: quantity 5 but invoice still 30 ...")
    controller.enter()
    controller.overwrite()
    orders["Buyer"].set_attribute("quantity", 5)
    try:
        controller.leave()
    except ValidationFailed as exc:
        print("  REJECTED atomically:", exc.diagnostics[0])
    community.settle()
    print("  Seller still sees: order", orders["Seller"].attributes(),
          "invoice", invoices["Seller"].attributes())
    print("  Buyer rolled back to: order", orders["Buyer"].attributes())


if __name__ == "__main__":
    main()
