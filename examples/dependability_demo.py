#!/usr/bin/env python3
"""Dependability tour: misbehaviour, evidence, arbitration, recovery.

Shows the middleware's safety and liveness machinery end to end:

1. a misbehaving organisation forges a commit — the honest replica
   refuses it and records attributable evidence;
2. an arbiter, given the parties' evidence logs, independently upholds
   the honest party's view and rejects the forged claim;
3. a node crashes mid-protocol and recovers — the run still completes
   (liveness under bounded temporary failures);
4. membership change: a fourth organisation joins, receives the agreed
   state, and one founding member departs.

Run:  python examples/dependability_demo.py
"""

from repro import Community, DictB2BObject
from repro.faults import ForgedCommitAuth
from repro.protocol import Arbiter


def main() -> None:
    community = Community(["OrgA", "OrgB", "OrgC"])
    replicas = {name: DictB2BObject() for name in community.names()}
    controllers = community.found_object("contract", replicas)

    # -- a legitimate agreement first ---------------------------------
    controller = controllers["OrgA"]
    controller.enter()
    controller.overwrite()
    replicas["OrgA"].set_attribute("clause1", "agreed text")
    controller.leave()
    community.settle()
    print("1. clause1 agreed by all:",
          replicas["OrgC"].get_attribute("clause1"))

    # -- misbehaviour: OrgB forges a commit ----------------------------
    behaviour = ForgedCommitAuth(community.node("OrgB"))
    controller_b = controllers["OrgB"]
    controller_b.enter()
    controller_b.overwrite()
    replicas["OrgB"].set_attribute("clause2", "sneaky text")
    controller_b.leave()  # OrgB believes it succeeded...
    community.settle()
    behaviour.uninstall()
    print("2. OrgA's view of clause2:",
          replicas["OrgA"].get_attribute("clause2"),
          "(the forged commit was refused)")
    reports = community.node("OrgA").misbehaviour_reports
    print("   OrgA detected:", ", ".join(sorted({r.kind for r in reports})))

    # -- arbitration ----------------------------------------------------
    arbiter = Arbiter(community.resolver, tsa_verifier=community.tsa.verifier)
    for name in community.names():
        arbiter.submit(name, community.node(name).ctx.evidence)
    decisions = list(
        community.node("OrgA").ctx.evidence.entries("authenticated-decision")
    )
    run_id = decisions[0].payload["run_id"]
    ruling = arbiter.rule_on_state_validity("contract", run_id, "OrgA")
    print(f"3. arbiter on clause1's run: {ruling.outcome} "
          f"({ruling.reasons[0]})")

    # -- eviction of the misbehaving party --------------------------------
    # OrgB installed its own forged state locally, so its replica has
    # diverged; the paper notes any subsequent coordination request
    # reveals the inconsistency.  The honest majority evicts it.
    controllers["OrgA"].evict(["OrgB"])
    community.settle()
    print("4. OrgB evicted; members now:", controllers["OrgA"].members())

    # -- crash and recovery ----------------------------------------------
    node_c = community.node("OrgC")
    network = community.runtime.network
    network.schedule(0.001, node_c.crash)
    network.schedule(0.8, node_c.recover)
    controller.enter()
    controller.overwrite()
    replicas["OrgA"].set_attribute("clause3", "resilient text")
    controller.leave()  # completes despite OrgC's temporary crash
    community.settle(2.0)
    print("5. clause3 agreed through OrgC's crash/recovery:",
          replicas["OrgC"].get_attribute("clause3"))

    # -- membership change ---------------------------------------------
    community.add_organisation("OrgD")
    replica_d = DictB2BObject()
    sponsor = controllers["OrgA"].members()[-1]
    community.node("OrgD").connect("contract", replica_d, sponsor)
    community.settle()
    print("6. OrgD joined via sponsor", sponsor,
          "and received the agreed state:", replica_d.get_attribute("clause3"))


if __name__ == "__main__":
    main()
