#!/usr/bin/env python3
"""Figure 5: two-party Tic-Tac-Toe with a cheat attempt.

Replays the exact game of the paper's screenshot.  Cross and Nought each
run a server holding a replica of the game object; every move is a state
change validated by the opponent's replica.  Cross's final attempt to
mark a square with the opponent's symbol is vetoed, never reaches
Nought's board, and leaves evidence.

Run:  python examples/tictactoe_demo.py
"""

from repro import Community
from repro.apps import CROSS, NOUGHT, TicTacToeObject, TicTacToePlayer
from repro.errors import ValidationFailed


def render(board) -> str:
    return "\n".join(
        " ".join(cell or "." for cell in board[row * 3:(row + 1) * 3])
        for row in range(3)
    )


def main() -> None:
    community = Community(["Cross", "Nought"])
    players = {"Cross": CROSS, "Nought": NOUGHT}
    replicas = {name: TicTacToeObject(players) for name in community.names()}
    controllers = community.found_object("game", replicas)
    cross = TicTacToePlayer(controllers["Cross"], CROSS)
    nought = TicTacToePlayer(controllers["Nought"], NOUGHT)

    print("Cross claims middle row, centre square")
    cross.save_move(4)
    print("Nought claims top row, left square")
    nought.save_move(0)
    print("Cross claims middle row, right square")
    cross.save_move(5)
    community.settle()
    print("\nagreed board:\n" + render(replicas["Nought"].board))

    print("\nCross attempts to mark bottom row, centre square with a zero...")
    try:
        cross.save_move(7, mark=NOUGHT)
    except ValidationFailed as exc:
        print("  VETOED:", "; ".join(exc.diagnostics))
    community.settle()

    print("\nboard at Nought's server (cheat not reflected):")
    print(render(replicas["Nought"].board))
    assert replicas["Nought"].board[7] == ""

    # Nought holds non-repudiable evidence of the attempt to cheat.
    log = community.node("Nought").ctx.evidence
    vetoes = [entry for entry in log.entries("authenticated-decision")
              if not entry.payload["valid"]]
    print(f"\nNought's evidence of the attempt: {len(vetoes)} "
          "vetoed decision bundle(s); Cross forfeits the game.")


if __name__ == "__main__":
    main()
