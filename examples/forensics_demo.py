#!/usr/bin/env python3
"""Cross-party causal tracing and evidence forensics, end to end.

Reproduces the paper's Figure 5 scenario — Cross tries to pass off an
illegal Tic-Tac-Toe move — under a three-organisation community on lossy
links, then plays auditor:

1. run the instrumented game; each organisation exports its *own* causal
   trace file and file-backed evidence log (plus a shared ``keys.json``);
2. merge the per-party traces into one Lamport-ordered causal timeline
   and flag anomalies (the veto, retransmission storms);
3. audit the evidence: re-verify every authenticated-decision bundle,
   cross-reference the traced veto, and name the cheating party — from
   signatures alone, no trust in anyone's testimony.

Run:  python examples/forensics_demo.py
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cli import _run_forensic_game  # noqa: E402
from repro.crypto.rsa import RsaPublicKey  # noqa: E402
from repro.crypto.signature import RsaVerifier  # noqa: E402
from repro.obs.audit import audit_evidence, load_evidence_log  # noqa: E402
from repro.obs.merge import merge_trace_files, render_timeline  # noqa: E402


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="forensics-") as export_dir:
        print("=== 1. instrumented game (Figure 5 cheat over lossy links) ===")
        _community, objects, rejected, _obs, trace_paths = _run_forensic_game(
            seed=3, latency=0.005, drop=0.15, duplicate=0.05,
            export_dir=export_dir,
        )
        board = objects["Witness"].board
        for row in range(3):
            print("  " + " ".join(c or "." for c in board[row * 3:row * 3 + 3]))
        print(f"  vetoed moves: {rejected}")
        print(f"  artefacts under {export_dir}")

        print()
        print("=== 2. merged causal timeline (Lamport order) ===")
        merged = merge_trace_files(sorted(trace_paths.values()))
        print(render_timeline(merged, max_events=6))

        print()
        print("=== 3. evidence audit ===")
        with open(os.path.join(export_dir, "keys.json"),
                  encoding="utf-8") as handle:
            key_data = json.load(handle)
        verifiers = {party: RsaVerifier(RsaPublicKey.from_dict(key))
                     for party, key in key_data["parties"].items()}
        tsa_verifier = RsaVerifier(RsaPublicKey.from_dict(key_data["tsa"]))
        logs = {
            name: load_evidence_log(
                name, os.path.join(export_dir, "evidence", name,
                                   "evidence.jsonl"))
            for name in ("Cross", "Nought", "Witness")
        }
        report = audit_evidence(
            logs, verifiers.__getitem__, tsa_verifier=tsa_verifier,
            merged=merged,
        )
        print(report.render())
        assert report.culprits() == ["Cross"], report.culprits()
        print()
        print("the audit convicted Cross and exonerated Nought and Witness.")


if __name__ == "__main__":
    main()
