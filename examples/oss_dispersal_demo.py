#!/usr/bin/env python3
"""Scenario 2 (section 2): dispersal of operational support to the customer.

A telecom provider and its customer share a service record.  The customer
now controls the aspects that logically belong to it (QoS tailoring,
endpoints, fault tickets) while the provider keeps provisioning — and
neither side can cross the line unnoticed.

The demo runs over the store-and-forward (MOM) transport from section 7's
future work: the customer goes offline mid-interaction and the exchange
completes when it re-attaches.

Run:  python examples/oss_dispersal_demo.py
"""

from repro.apps.oss import (
    ROLE_CUSTOMER,
    ROLE_PROVIDER,
    ServiceClient,
    ServiceObject,
    new_service,
)
from repro.core import DEFERRED_SYNCHRONOUS, Community, SimRuntime
from repro.errors import ValidationFailed
from repro.transport.mom import BrokeredSimNetwork


def main() -> None:
    network = BrokeredSimNetwork(seed=7)
    community = Community(["Telco", "Acme"],
                          runtime=SimRuntime(network=network))
    roles = {"Telco": ROLE_PROVIDER, "Acme": ROLE_CUSTOMER}
    replicas = {
        name: ServiceObject(roles, state=new_service(capacity_mbps=100,
                                                     purchased_tier="silver"))
        for name in community.names()
    }
    controllers = community.found_object("service", replicas)
    telco = ServiceClient(controllers["Telco"])
    acme = ServiceClient(controllers["Acme"])

    print("Acme tailors its own service (QoS + endpoints):")
    acme.set_qos_class("silver")
    acme.set_endpoints(["london-01", "leeds-02"])
    community.settle(2.0)
    print("  Telco sees configuration:", replicas["Telco"].configuration)

    print("\nAcme tries to exceed its purchased tier...")
    try:
        acme.set_qos_class("platinum")
    except ValidationFailed as exc:
        print("  VETOED by Telco:", exc.diagnostics[0])

    print("\nTelco tries to quietly change Acme's endpoints...")
    try:
        telco.set_endpoints(["telco-managed-only"])
    except ValidationFailed as exc:
        print("  VETOED by Acme:", exc.diagnostics[0])

    print("\nFault handling — the dispersed workflow:")
    acme.open_ticket("T100", "packet loss on london-01")
    telco.acknowledge_ticket("T100")
    telco.resolve_ticket("T100")
    community.settle(2.0)
    print("  ticket T100 at Acme:", replicas["Acme"].ticket("T100"))

    print("\nAcme goes offline (store-and-forward transport)...")
    network.detach("Acme")
    controllers["Telco"].mode = DEFERRED_SYNCHRONOUS
    ticket = telco.set_capacity(200)  # provisioning upgrade while Acme is away
    community.settle(2.0)
    print(f"  capacity change pending, {network.mailbox_depth('Acme')} "
          "messages queued at the broker")
    print("Acme re-attaches...")
    network.attach("Acme")
    community.settle(5.0)
    controllers["Telco"].coord_commit(ticket)
    print("  Acme's replica now shows capacity:",
          replicas["Acme"].provisioning["capacity_mbps"], "Mbps")

    print("\nAcme confirms the fix and closes the ticket:")
    acme.close_ticket("T100")
    community.settle(2.0)
    print("  ticket T100 at Telco:", replicas["Telco"].ticket("T100"))

    for name in community.names():
        entries = community.node(name).ctx.evidence.verify_chain()
        print(f"  {name}: evidence chain intact ({entries} entries)")


if __name__ == "__main__":
    main()
