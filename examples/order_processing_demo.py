#!/usr/bin/env python3
"""Figure 7: order processing with asymmetric validation rules.

A customer and a supplier share the state of an order.  The customer may
add items and quantities but not prices; the supplier may price items and
change nothing else.  The demo then extends to the paper's four-party
variant with an approver and a dispatcher.

Run:  python examples/order_processing_demo.py
"""

from repro import Community
from repro.apps import (
    ROLE_APPROVER,
    ROLE_CUSTOMER,
    ROLE_DISPATCHER,
    ROLE_SUPPLIER,
    OrderClient,
    OrderObject,
)
from repro.errors import ValidationFailed


def show(order: OrderObject, owner: str) -> None:
    print(f"  {owner}'s copy:")
    for name, item in sorted(order.items().items()):
        price = item["price"] if item["price"] is not None else "-"
        approved = " approved" if item["approved"] else ""
        print(f"    {name}: qty={item['quantity']} price={price}{approved}")


def two_party() -> None:
    print("=== two-party order (Figure 7) ===")
    community = Community(["Customer", "Supplier"])
    roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER}
    replicas = {name: OrderObject(roles) for name in community.names()}
    controllers = community.found_object("order", replicas)
    customer = OrderClient(controllers["Customer"])
    supplier = OrderClient(controllers["Supplier"])

    print("customer orders 2 widget1s")
    customer.add_item("widget1", 2)
    print("supplier prices widget1 at 10 per unit")
    supplier.price_item("widget1", 10)
    print("customer amends the order for 10 widget2s")
    customer.add_item("widget2", 10)
    community.settle()
    show(replicas["Customer"], "Customer")

    print("supplier attempts to price widget2 AND change its quantity...")
    try:
        supplier.price_and_change_quantity("widget2", 20, 5)
    except ValidationFailed as exc:
        print("  REJECTED:", "; ".join(exc.diagnostics))
    community.settle()
    show(replicas["Customer"], "Customer")


def four_party() -> None:
    print("\n=== four-party order (approver + dispatcher) ===")
    names = ["Customer", "Supplier", "Approver", "Dispatcher"]
    community = Community(names)
    roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER,
             "Approver": ROLE_APPROVER, "Dispatcher": ROLE_DISPATCHER}
    replicas = {name: OrderObject(roles) for name in names}
    controllers = community.found_object("order", replicas)
    clients = {name: OrderClient(controllers[name]) for name in names}

    clients["Customer"].add_item("widget1", 3)
    clients["Supplier"].price_item("widget1", 30)
    clients["Approver"].approve_item("widget1")
    clients["Dispatcher"].commit_delivery("within 48h")
    community.settle()
    show(replicas["Dispatcher"], "Dispatcher")
    delivery = replicas["Customer"].get_state()["delivery"]
    print(f"  delivery terms agreed by all four parties: {delivery['terms']}")

    print("dispatcher attempts to change a quantity (outside its role)...")
    try:
        clients["Dispatcher"].change_quantity("widget1", 5)
    except ValidationFailed as exc:
        print("  REJECTED:", exc.diagnostics[0])


def main() -> None:
    two_party()
    four_party()


if __name__ == "__main__":
    main()
