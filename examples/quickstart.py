#!/usr/bin/env python3
"""Quickstart: two organisations share a coordinated object.

Demonstrates the core B2BObjects loop in ~40 lines:

1. build a community (PKI, time-stamping service, network, nodes);
2. found a shared object between OrgA and OrgB;
3. OrgA changes the state inside an enter/overwrite/leave scope —
   the final leave runs the non-repudiable coordination protocol;
4. OrgB's replica now holds the validated state, and both sides hold
   signed, hash-chained evidence of the agreement.

Run:  python examples/quickstart.py
"""

from repro import Community, DictB2BObject


def main() -> None:
    # 1. A community wires up everything the middleware needs: a CA that
    #    certifies each organisation's signing key, a trusted
    #    time-stamping service, and a (simulated) network.
    community = Community(["OrgA", "OrgB"])

    # 2. Each organisation holds its own replica of the shared object.
    replicas = {"OrgA": DictB2BObject(), "OrgB": DictB2BObject()}
    controllers = community.found_object("order", replicas)

    # 3. OrgA updates the shared state.  The scope markers follow the
    #    paper's API: enter -> overwrite -> (mutate) -> leave.
    controller = controllers["OrgA"]
    controller.enter()
    controller.overwrite()
    replicas["OrgA"].set_attribute("widget1", {"quantity": 2})
    controller.leave()  # blocks until OrgB has validated the change
    community.settle()  # drain in-flight acknowledgements

    # 4. Both replicas agree, and each party holds verifiable evidence.
    print("OrgB sees:", replicas["OrgB"].attributes())
    assert replicas["OrgB"].get_attribute("widget1") == {"quantity": 2}

    log = community.node("OrgA").ctx.evidence
    entries = log.verify_chain()
    print(f"OrgA evidence log verifies: {entries} chained entries")

    decisions = list(log.entries("authenticated-decision"))
    print(f"authenticated decisions held: {len(decisions)} "
          f"(valid={decisions[0].payload['valid']})")


if __name__ == "__main__":
    main()
