#!/usr/bin/env python3
"""Two real processes sharing an object over TCP.

Unlike ``tcp_two_processes.py`` (two organisations inside one process),
this demo forks a child Python process: the parent hosts OrgA, the child
hosts OrgB, and the only channel between them is loopback TCP.  The
parent plays the community CA: it generates both key pairs and
certificates and hands the child its bootstrap (its private key, both
certificates, the peer's address) as JSON on the command line's file.

Flow: OrgA proposes a price-list update (validated by OrgB in the other
process), then proposes an invalid one and receives the veto across the
process boundary.

Run:  python examples/tcp_multiprocess_demo.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

from repro.core import Community  # noqa: F401 (documentation pointer)
from repro.core.node import OrganisationNode
from repro.core.runtime import ThreadedRuntime
from repro.core.object import DictB2BObject
from repro.crypto.certificates import Certificate, CertificateAuthority, CertificateStore
from repro.crypto.rsa import RsaPrivateKey
from repro.crypto.signature import KeyPair, generate_party_keypair
from repro.errors import ValidationFailed
from repro.protocol.context import PartyContext
from repro.protocol.validation import Decision

OBJECT_NAME = "pricelist"
MEMBERS = ["OrgA", "OrgB"]


class PricedOrder(DictB2BObject):
    def validate_state(self, proposed, current, proposer):
        for name, price in proposed.items():
            if not isinstance(price, int) or price <= 0:
                return Decision.reject(f"{name}: price must be positive")
        return Decision.accept()


def _key_to_dict(keypair: KeyPair) -> dict:
    key = keypair.private_key
    return {"n": key.modulus, "e": key.public_exponent,
            "d": key.private_exponent, "p": key.prime_p, "q": key.prime_q}


def _key_from_dict(party_id: str, data: dict) -> KeyPair:
    return KeyPair(party_id, RsaPrivateKey(
        modulus=data["n"], public_exponent=data["e"],
        private_exponent=data["d"], prime_p=data["p"], prime_q=data["q"],
    ))


def build_node(party_id: str, keypair: KeyPair, ca_public: dict,
               certificates: "list[dict]", runtime: ThreadedRuntime,
               peers: "dict[str, list]") -> OrganisationNode:
    """Assemble one organisation's node from bootstrap material."""
    from repro.crypto.signature import verifier_for_public_key

    store = CertificateStore()
    store.trust_authority("CA", verifier_for_public_key(ca_public))
    own_certificate = None
    for raw in certificates:
        certificate = _cert_from_json(raw)
        store.add_certificate(certificate)
        if certificate.subject == party_id:
            own_certificate = certificate
    ctx = PartyContext(
        party_id=party_id,
        signer=keypair.signer(),
        resolver=store.verifier_for,
        tsa=None,  # demo runs without a shared time-stamping service
    )
    node = OrganisationNode(
        ctx, runtime,
        certificate=own_certificate.to_dict() if own_certificate else None,
        retransmit_interval=0.2,
    )
    for peer, (host, port) in peers.items():
        runtime.network.add_remote_party(peer, host, port)
    return node


def _cert_to_json(certificate: Certificate) -> dict:
    data = certificate.to_dict()
    data["signature"]["value"] = data["signature"]["value"].hex()
    return data


def _cert_from_json(data: dict) -> Certificate:
    data = json.loads(json.dumps(data))  # deep copy
    data["signature"]["value"] = bytes.fromhex(data["signature"]["value"])
    return Certificate.from_dict(data)


def run_child(bootstrap_path: str) -> None:
    with open(bootstrap_path, encoding="utf-8") as handle:
        bootstrap = json.load(handle)
    runtime = ThreadedRuntime()
    try:
        keypair = _key_from_dict("OrgB", bootstrap["private_key"])
        node = build_node(
            "OrgB", keypair, bootstrap["ca_public"],
            bootstrap["certificates"], runtime,
            peers={"OrgA": bootstrap["orga_address"]},
        )
        # The node's endpoint already registered a listener; report its
        # ephemeral address back to the parent.
        host, port = runtime.network.address_of("OrgB")
        print(f"CHILD-LISTENING {host} {port}", flush=True)
        node.register_object(OBJECT_NAME, PricedOrder(), MEMBERS)
        print("CHILD-READY", flush=True)
        deadline = time.time() + float(bootstrap.get("lifetime", 15))
        while time.time() < deadline:
            time.sleep(0.1)
    finally:
        runtime.close()


def run_parent() -> None:
    ca = CertificateAuthority("CA")
    key_a = generate_party_keypair("OrgA")
    key_b = generate_party_keypair("OrgB")
    cert_a = ca.issue("OrgA", key_a.public_key)
    cert_b = ca.issue("OrgB", key_b.public_key)
    certificates = [_cert_to_json(cert_a), _cert_to_json(cert_b)]

    runtime = ThreadedRuntime()
    child = None
    try:
        node_a = build_node("OrgA", key_a, ca.public_key, certificates,
                            runtime, peers={})
        orga_address = list(runtime.network.address_of("OrgA"))
        print(f"parent: OrgA listening on {orga_address}")

        bootstrap = {
            "private_key": _key_to_dict(key_b),
            "ca_public": ca.public_key,
            "certificates": certificates,
            "orga_address": orga_address,
            "lifetime": 20,
        }
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as handle:
            json.dump(bootstrap, handle)
            bootstrap_path = handle.name

        child = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child",
             bootstrap_path],
            stdout=subprocess.PIPE, text=True,
        )
        child_port = None
        for line in child.stdout:  # type: ignore[union-attr]
            line = line.strip()
            if line.startswith("CHILD-LISTENING"):
                _, host, port = line.split()
                child_port = int(port)
                runtime.network.add_remote_party("OrgB", host, child_port)
            if line == "CHILD-READY":
                break
        print(f"parent: child process (OrgB) ready on port {child_port}")

        replica = PricedOrder()
        controller = node_a.register_object(OBJECT_NAME, replica, MEMBERS,
                                            timeout=10.0)

        print("parent: proposing {widget: 25} ...")
        controller.enter()
        controller.overwrite()
        replica.set_attribute("widget", 25)
        controller.leave()
        print("parent: agreed across processes:", controller.agreed_state())

        print("parent: proposing an invalid price {gadget: -1} ...")
        controller.enter()
        controller.overwrite()
        replica.set_attribute("gadget", -1)
        try:
            controller.leave()
        except ValidationFailed as exc:
            print("parent: vetoed by the child process:",
                  exc.diagnostics[0])
        assert replica.get_attribute("gadget") is None
        print("parent: evidence log entries:", len(node_a.ctx.evidence))
        print("OK: cross-process coordination demo complete")
    finally:
        runtime.close()
        if child is not None:
            child.terminate()
            child.wait(timeout=5)
        try:
            os.unlink(bootstrap_path)
        except (OSError, NameError):
            pass


def main() -> None:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        run_child(sys.argv[2])
    else:
        run_parent()


if __name__ == "__main__":
    main()
