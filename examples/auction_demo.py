#!/usr/bin/env python3
"""Scenario 3 (section 2): a distributed auction service.

Three autonomous auction houses jointly run an auction.  Clients bid
through whichever house they like; every bid is validated by all houses,
so no single house can favour its own clients, and every house holds
non-repudiable evidence of the full bid history.

Run:  python examples/auction_demo.py
"""

from repro import Community
from repro.apps import AuctionHouse, AuctionObject
from repro.errors import ValidationFailed


def main() -> None:
    houses = ["ChristiesNorth", "SothebysEast", "PhillipsWest"]
    community = Community(houses)
    replicas = {name: AuctionObject(item="painting-42", reserve=100)
                for name in houses}
    controllers = community.found_object("auction", replicas)
    desks = {name: AuctionHouse(controllers[name]) for name in houses}

    print("reserve price: 100\n")
    print("alice bids 100 through", houses[0])
    desks[houses[0]].place_bid("alice", 100)
    print("bob bids 150 through", houses[1])
    desks[houses[1]].place_bid("bob", 150)

    print("mallory bids 120 through", houses[2], "(below current highest)...")
    try:
        desks[houses[2]].place_bid("mallory", 120)
    except ValidationFailed as exc:
        print("  rejected by the other houses:", exc.diagnostics[0])

    print("carol bids 200 through", houses[2])
    desks[houses[2]].place_bid("carol", 200)

    print("\n", houses[0], "closes the auction")
    desks[houses[0]].close_auction()
    community.settle()

    for name in houses:
        winner = replicas[name].winner
        print(f"  {name} records the winner as: "
              f"{winner['bidder']} at {winner['amount']}")

    # Every house holds the same evidence trail of every accepted bid.
    for name in houses:
        log = community.node(name).ctx.evidence
        decisions = [e for e in log.entries("authenticated-decision")
                     if e.payload["valid"]]
        log.verify_chain()
        print(f"  {name}: {len(decisions)} unanimously agreed state "
              "changes on file")


if __name__ == "__main__":
    main()
