#!/usr/bin/env python3
"""Evolving interaction styles (section 2, Figure 1).

"Relationships between organisations may change in such a way that
indirect interaction evolves to direct interaction."  Two organisations
start out interacting through trusted agents (Figure 1b) — disclosing
only selected fields — and, once enough successful exchanges have built
confidence, they connect to each other's state directly (Figure 1a) and
retire the agents.

Run:  python examples/evolving_interaction_demo.py
"""

from repro import Community, DictB2BObject
from repro.agents import FilterDisclosurePolicy, TrustedAgent


def main() -> None:
    community = Community(["Org1", "Org2", "TA1", "TA2"])

    # ---- phase 1: indirect interaction through trusted agents --------
    print("phase 1: indirect interaction (Figure 1b)")
    inner, inner_ctrl = {}, {}
    for org, agent in (("Org1", "TA1"), ("Org2", "TA2")):
        replicas = {org: DictB2BObject(), agent: DictB2BObject()}
        controllers = community.found_object(f"inner_{org}", replicas)
        inner[org] = replicas[org]
        inner_ctrl[org] = controllers[org]
    outer = {agent: DictB2BObject() for agent in ("TA1", "TA2")}
    community.found_object("outer", outer)
    for org, agent in (("Org1", "TA1"), ("Org2", "TA2")):
        TrustedAgent(
            community.node(agent), f"inner_{org}", "outer",
            policy=FilterDisclosurePolicy(
                disclosed_keys=[f"offer_{org}"],
            ),
        )

    controller = inner_ctrl["Org1"]
    controller.enter()
    controller.overwrite()
    inner["Org1"].set_attribute("offer_Org1", "100 units at 5")
    inner["Org1"].set_attribute("internal_margin", 0.4)  # never disclosed
    controller.leave()
    community.settle(5.0)
    print("  Org2 learned:", {k: v for k, v in inner["Org2"].attributes().items()
                              if k.startswith("offer")})
    print("  Org2 did NOT learn internal_margin:",
          inner["Org2"].get_attribute("internal_margin") is None)

    controller = inner_ctrl["Org2"]
    controller.enter()
    controller.overwrite()
    inner["Org2"].set_attribute("offer_Org2", "accepts at 5, net 30")
    controller.leave()
    community.settle(5.0)
    print("  Org1 learned:", inner["Org1"].get_attribute("offer_Org2"))

    # ---- phase 2: confidence established, interact directly -----------
    print("\nphase 2: evolve to direct interaction (Figure 1a)")
    contract = {"Org1": DictB2BObject(), "Org2": DictB2BObject()}
    direct = community.found_object("contract", contract)
    controller = direct["Org1"]
    controller.enter()
    controller.overwrite()
    contract["Org1"].set_attribute("terms", "100 units at 5, net 30")
    contract["Org1"].set_attribute("signed_by", ["Org1"])
    controller.leave()
    controller = direct["Org2"]
    controller.enter()
    controller.overwrite()
    contract["Org2"].set_attribute("signed_by", ["Org1", "Org2"])
    controller.leave()
    community.settle(2.0)
    print("  direct contract at Org1:", contract["Org1"].attributes())

    # The agents' mediation objects are retired: each principal leaves
    # its inner object (its agent remains the sole member).
    for org in ("Org1", "Org2"):
        inner_ctrl[org].disconnect()
    community.settle(2.0)
    print("  inner objects retired; Org1 still holds evidence of both "
          "phases:",
          len(community.node("Org1").ctx.evidence), "log entries")
    community.node("Org1").ctx.evidence.verify_chain()


if __name__ == "__main__":
    main()
