#!/usr/bin/env python3
"""Figure 6: Tic-Tac-Toe played through a trusted third party.

Each player shares a two-party game object with the TTP instead of with
the opponent.  The TTP validates every move before relaying it, so an
invalid move is never disclosed to the other player — the "conditional
state disclosure" of the indirect interaction style (Figure 1b).

Run:  python examples/ttp_tictactoe_demo.py
"""

from repro import Community
from repro.agents import ValidatingTTP
from repro.apps import CROSS, NOUGHT, TicTacToeObject, TicTacToePlayer
from repro.errors import ValidationFailed


def render(board) -> str:
    return "\n".join(
        " ".join(cell or "." for cell in board[row * 3:(row + 1) * 3])
        for row in range(3)
    )


def main() -> None:
    community = Community(["Cross", "Nought", "TTP"])
    players = {"Cross": CROSS, "Nought": NOUGHT}

    # Two independent two-party objects, both including the TTP.
    side_cross = {name: TicTacToeObject(players) for name in ["Cross", "TTP"]}
    side_nought = {name: TicTacToeObject(players) for name in ["TTP", "Nought"]}
    ctrl_cross = community.found_object("game_c", side_cross)
    ctrl_nought = community.found_object("game_n", side_nought)

    # The TTP relays validated state between the two sides.
    ttp = ValidatingTTP(community.node("TTP"), ["game_c", "game_n"])

    cross = TicTacToePlayer(ctrl_cross["Cross"], CROSS)
    nought = TicTacToePlayer(ctrl_nought["Nought"], NOUGHT)

    print("Cross plays centre (via the TTP)")
    cross.save_move(4)
    community.settle()
    print("Nought's board now shows:\n" + render(side_nought["Nought"].board))

    print("\nNought plays top-left (via the TTP)")
    nought.save_move(0)
    community.settle()
    print("Cross's board now shows:\n" + render(side_cross["Cross"].board))

    print("\nCross attempts to overwrite the top-left square...")
    try:
        cross.save_move(0)
    except ValidationFailed as exc:
        print("  vetoed at the TTP:", exc.diagnostics[0])
    community.settle()
    print("Nought never saw the attempt; its board is unchanged:")
    print(render(side_nought["Nought"].board))
    print(f"\nmoves relayed by the TTP: {ttp.relayed}")


if __name__ == "__main__":
    main()
