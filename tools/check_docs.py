#!/usr/bin/env python3
"""Documentation checker: broken links and stale examples fail the build.

Two checks, both stdlib-only:

1. **Intra-repo markdown links** — every ``[text](target)`` in every
   tracked ``*.md`` file whose target is not an external URL or pure
   anchor must resolve to an existing file or directory (anchors are
   stripped, targets resolve relative to the linking file).
2. **Embedded Python examples** — every fenced ```` ```python ````
   block in the ``EXECUTABLE_DOCS`` files is executed with ``src`` on
   ``sys.path``.  Blocks containing ``...`` placeholders are skipped
   as illustrative.  An example that raises fails the check — so the
   documented API cannot silently drift from the implementation.
   ``--tcp-mode {pooled,reactor}`` exports ``REPRO_DOCS_TCP_MODE`` so
   examples that honour it (``docs/READS.md``) run over real TCP
   sockets in that mode instead of the simulator.
3. **Experiment-count consistency** — the experiment count stated in
   ``README.md`` must equal the number of experiment rows in the
   ``EXPERIMENTS.md`` table, so the docs cannot rot as benches land.

Run from the repository root (CI's ``docs-check`` job does):

    PYTHONPATH=src python tools/check_docs.py
    PYTHONPATH=src python tools/check_docs.py --tcp-mode reactor
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import traceback

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Directories never scanned for markdown files.
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".claude",
             "node_modules", "results"}

#: Files whose ```python blocks must execute cleanly.
EXECUTABLE_DOCS = ("README.md", os.path.join("docs", "API.md"),
                   os.path.join("docs", "GATEWAY.md"),
                   os.path.join("docs", "PROTOCOL.md"),
                   os.path.join("docs", "READS.md"))

#: README phrasing that must track the EXPERIMENTS.md table.
EXPERIMENT_COUNT_RE = re.compile(r"(\d+) experiments")
EXPERIMENT_ROW_RE = re.compile(r"^\| [FC]\d")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")


def markdown_files() -> "list[str]":
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def iter_prose_lines(text: str):
    """(line_number, line) for lines outside fenced code blocks, with
    inline code spans blanked so code snippets never look like links."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, INLINE_CODE_RE.sub("", line)


def check_links() -> "list[str]":
    problems = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        base = os.path.dirname(path)
        rel_path = os.path.relpath(path, REPO_ROOT)
        for number, line in iter_prose_lines(text):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    problems.append(
                        f"{rel_path}:{number}: broken link -> {target}"
                    )
    return problems


def python_blocks(text: str) -> "list[tuple[int, str]]":
    """(starting_line, source) for every ```python fenced block."""
    blocks = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        if lines[index].strip().lower() in ("```python", "```py"):
            start = index + 1
            body = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                body.append(lines[index])
                index += 1
            blocks.append((start + 1, "\n".join(body)))
        index += 1
    return blocks


def check_examples() -> "list[str]":
    problems = []
    src_dir = os.path.join(REPO_ROOT, "src")
    if src_dir not in sys.path:
        sys.path.insert(0, src_dir)
    for rel in EXECUTABLE_DOCS:
        path = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(path):
            problems.append(f"{rel}: executable-docs file missing")
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for line_number, source in python_blocks(text):
            if "..." in source:
                continue  # illustrative snippet, not a runnable example
            namespace = {"__name__": f"docs_example_{line_number}"}
            try:
                exec(compile(source, f"{rel}:{line_number}", "exec"),
                     namespace)
            except Exception:
                trace = traceback.format_exc(limit=3).rstrip()
                problems.append(
                    f"{rel}:{line_number}: example failed\n{trace}"
                )
    return problems


def check_experiment_count() -> "list[str]":
    """README's stated experiment count must match EXPERIMENTS.md."""
    with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md"),
              encoding="utf-8") as handle:
        rows = sum(1 for line in handle
                   if EXPERIMENT_ROW_RE.match(line))
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as handle:
        stated = [int(m.group(1))
                  for m in EXPERIMENT_COUNT_RE.finditer(handle.read())]
    problems = []
    if not stated:
        problems.append("README.md: no 'N experiments' count found")
    for count in stated:
        if count != rows:
            problems.append(
                f"README.md says '{count} experiments' but EXPERIMENTS.md "
                f"has {rows} experiment rows — update the README"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tcp-mode", choices=("pooled", "reactor"), default=None,
        help="run REPRO_DOCS_TCP_MODE-aware examples over real TCP "
             "sockets in this transport mode (default: simulator)")
    options = parser.parse_args()
    if options.tcp_mode:
        os.environ["REPRO_DOCS_TCP_MODE"] = options.tcp_mode
    problems = check_links()
    problems += check_examples()
    problems += check_experiment_count()
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"\ndocs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: all markdown links resolve and all examples run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
